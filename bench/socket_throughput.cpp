// socket_throughput — the C10k serving front door, measured.
//
// One MinerDaemon serves the same cached mining job through both front
// doors (net/remote.hpp): the legacy hub (one poll() pass over every
// connection per io tick, per-frame mailbox hand-offs) and the epoll
// reactor (net/reactor.hpp: sharded edge-triggered loops, writev-batched
// responses). A driver child process connects C clients, keeps a small
// active subset pipelining requests while the rest sit connected — the
// C10k shape, where almost every connection is idle at any instant — and
// reports completed requests, wall time, p50/p95/p99 latency and an FNV-1a
// digest of every served value. Emits BENCH_socket_throughput.json.
//
// The driver runs in a CHILD process (re-exec of this binary with
// --drive) so the client file descriptors live in their own fd table:
// at the 10k soak the daemon side alone holds ~10k fds, and parent +
// child each stay under the usual per-process limits.
//
// Enforced by exit code, not prose:
//   * bit-identity: every served value digest (legacy hub, reactor, every
//     scale) equals the direct MiningEngine reference — if the front door
//     changes results, the bench fails;
//   * scaling floor: the reactor must serve >= 3x the legacy hub's req/s
//     at 1000 connected clients;
//   * soak (--full): 10000 clients all connect and are served with zero
//     errors.
//
//   socket_throughput [--quick] [--full] [--requests N]
//   socket_throughput --drive <host:port> <seed> <parties> <conns> <requests> <active>
#include <poll.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "net/remote.hpp"
#include "protocol/party_logic.hpp"

namespace {

using sap::Table;
using sap::data::Dataset;
namespace net = sap::net;
namespace proto = sap::proto;

/// The hammered job is structural and O(1) — front-door cost (scan, wake,
/// decode, flush) must dominate the measurement, not model fitting. A full
/// trainable job round trip is still compared bit-for-bit per door below.
constexpr const char* kJob = "record-count";
constexpr const char* kTrainableJob = "nb-train-accuracy";
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv_bytes(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < len; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}

std::uint64_t fnv_values(std::uint64_t h, std::span<const double> values) {
  for (const double v : values) {
    const auto bits = std::bit_cast<std::uint64_t>(v);
    h = fnv_bytes(h, &bits, sizeof bits);
  }
  return h;
}

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---- driver child (--drive) ----------------------------------------------
//
// Protocol per connection: Hello(kClaimAnyParty) -> Welcome(id), then the
// first `active` connections pipeline kMiningRequest frames (one
// outstanding each) while the remainder stay connected and silent. Both
// front doors speak this wire format, so the same driver measures both.

struct DriveResult {
  std::size_t conns = 0;
  std::size_t welcomed = 0;
  std::size_t completed = 0;
  std::int64_t elapsed_us = 0;
  std::int64_t p50_us = 0;
  std::int64_t p95_us = 0;
  std::int64_t p99_us = 0;
  std::size_t errors = 0;
  std::uint64_t digest = kFnvOffset;
};

int drive_main(int argc, char** argv) {
  if (argc != 8) {
    std::fprintf(stderr, "drive: expected <addr> <seed> <parties> <conns> <requests> <active>\n");
    return 2;
  }
  const net::SocketAddr addr = net::SocketAddr::parse(argv[2]);
  const std::uint64_t seed = std::strtoull(argv[3], nullptr, 10);
  const std::size_t parties = std::strtoull(argv[4], nullptr, 10);
  const std::size_t conns = std::strtoull(argv[5], nullptr, 10);
  const std::size_t requests = std::strtoull(argv[6], nullptr, 10);
  const std::size_t active =
      std::min(static_cast<std::size_t>(std::strtoull(argv[7], nullptr, 10)), conns);

  const std::uint64_t secret = proto::logic::derive_session_seeds(seed, parties).session_secret;
  const auto miner = static_cast<proto::PartyId>(parties);
  DriveResult r;
  r.conns = conns;

  // Connect + Hello everyone (pipelined: all Hellos in flight before the
  // first Welcome is read back).
  std::vector<net::TcpSocket> socks;
  std::vector<net::FrameReader> readers;
  socks.reserve(conns);
  readers.reserve(conns);
  std::vector<std::uint8_t> hello_bytes;
  {
    net::Frame hello;
    hello.type = net::FrameType::kHello;
    hello.to = miner;
    hello.body = net::u32_body(net::kClaimAnyParty);
    encode_frame(hello, hello_bytes);
  }
  for (std::size_t c = 0; c < conns; ++c) {
    socks.push_back(net::TcpSocket::connect(addr, 15'000));
    readers.emplace_back(net::kDefaultMaxBody);
    socks.back().write_all(hello_bytes.data(), hello_bytes.size(), 15'000);
  }

  std::vector<proto::PartyId> ids(conns, 0);
  std::vector<std::uint8_t> rbuf(64u << 10);
  const auto read_frame = [&](std::size_t c, net::Frame& out) -> bool {
    const std::int64_t deadline = now_us() + 15'000'000;
    while (!readers[c].next(out)) {
      if (now_us() > deadline) return false;
      bool closed = false;
      const std::size_t got = socks[c].read_some(rbuf.data(), rbuf.size(), 1'000, closed);
      if (got > 0) readers[c].feed(rbuf.data(), got);
      if (closed && got == 0) return false;
    }
    return true;
  };
  for (std::size_t c = 0; c < conns; ++c) {
    net::Frame welcome;
    if (!read_frame(c, welcome) || welcome.type != net::FrameType::kWelcome) {
      ++r.errors;
      continue;
    }
    ids[c] = net::body_u32(welcome.body);
    ++r.welcomed;
  }
  if (r.welcomed < conns) {
    std::fprintf(stderr, "drive: only %zu/%zu connections welcomed\n", r.welcomed, conns);
  }

  // Pre-encode each active connection's request once (the envelope key is
  // per-link, so the bytes differ per id but are reused for every send).
  const std::vector<double> payload = proto::encode_mining_request(kJob, {});
  std::vector<std::vector<std::uint8_t>> req_bytes(active);
  for (std::size_t c = 0; c < active; ++c) {
    net::Frame req;
    req.type = net::FrameType::kData;
    req.payload_kind = static_cast<std::uint8_t>(proto::PayloadKind::kMiningRequest);
    req.from = ids[c];
    req.to = miner;
    req.body = net::envelope_body(proto::EncryptedEnvelope(
        payload, proto::detail::derive_link_key(secret, ids[c], miner)));
    encode_frame(req, req_bytes[c]);
  }

  // One response on a connection with an outstanding request: stamp the
  // latency FIRST (decrypt/digest cost is the client's, not the server's),
  // then fold the served values into the digest.
  std::vector<std::int64_t> sent_at(active, 0);
  std::vector<std::int64_t> latencies;
  latencies.reserve(requests);
  const auto on_response = [&](std::size_t c, const net::FrameView& fv) {
    latencies.push_back(now_us() - sent_at[c]);
    ++r.completed;
    if (fv.type != net::FrameType::kData ||
        fv.payload_kind != static_cast<std::uint8_t>(proto::PayloadKind::kMiningResponse)) {
      ++r.errors;
      return;
    }
    const std::vector<double> wire = net::body_envelope(fv.body).open(
        proto::detail::derive_link_key(secret, miner, ids[c]));
    r.digest = fnv_values(r.digest, wire);
  };

  // Warmup round (untimed): one request per active connection proves the
  // path end to end before the clock starts.
  for (std::size_t c = 0; c < active; ++c) {
    socks[c].write_all(req_bytes[c].data(), req_bytes[c].size(), 15'000);
    sent_at[c] = now_us();
    net::Frame resp;
    if (!read_frame(c, resp)) {
      std::fprintf(stderr, "drive: warmup response missing on conn %zu\n", c);
      return 1;
    }
  }

  // Timed phase: every active connection keeps exactly one request
  // outstanding; poll() here is over the ACTIVE set only — the point of the
  // benchmark is what the SERVER does about the idle majority.
  std::vector<pollfd> pfds(active);
  for (std::size_t c = 0; c < active; ++c) {
    pfds[c] = {socks[c].fd(), POLLIN, 0};
  }
  std::size_t sent = 0;
  const std::int64_t t0 = now_us();
  for (std::size_t c = 0; c < active && sent < requests; ++c) {
    socks[c].write_all(req_bytes[c].data(), req_bytes[c].size(), 15'000);
    sent_at[c] = now_us();
    ++sent;
  }
  while (r.completed < requests) {
    const int rc = ::poll(pfds.data(), active, 15'000);
    if (rc <= 0) {
      std::fprintf(stderr, "drive: stalled at %zu/%zu responses\n", r.completed, requests);
      return 1;
    }
    for (std::size_t c = 0; c < active; ++c) {
      if ((pfds[c].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      bool closed = false;
      for (;;) {
        const std::size_t got = socks[c].read_some(rbuf.data(), rbuf.size(), 0, closed);
        if (got == 0) break;
        readers[c].feed(rbuf.data(), got);
      }
      net::FrameView fv;
      while (readers[c].next_view(fv)) {
        on_response(c, fv);
        if (sent < requests) {
          socks[c].write_all(req_bytes[c].data(), req_bytes[c].size(), 15'000);
          sent_at[c] = now_us();
          ++sent;
        } else {
          pfds[c].fd = -1;  // drained; stop polling this connection
        }
      }
      if (closed && r.completed < requests) {
        std::fprintf(stderr, "drive: conn %zu closed mid-run\n", c);
        return 1;
      }
    }
  }
  r.elapsed_us = now_us() - t0;

  // Same log-linear histogram the daemons export over the stats door, so
  // the reported percentiles line up with live `sap_cli stats` quantiles.
  std::vector<double> lat_us(latencies.begin(), latencies.end());
  const auto summary = sap::bench::summarize_latency(lat_us);
  r.p50_us = static_cast<std::int64_t>(summary.p50);
  r.p95_us = static_cast<std::int64_t>(summary.p95);
  r.p99_us = static_cast<std::int64_t>(summary.p99);
  std::printf("RESULT conns=%zu welcomed=%zu completed=%zu elapsed_us=%lld p50_us=%lld "
              "p95_us=%lld p99_us=%lld errors=%zu digest=%llu\n",
              r.conns, r.welcomed, r.completed, static_cast<long long>(r.elapsed_us),
              static_cast<long long>(r.p50_us), static_cast<long long>(r.p95_us),
              static_cast<long long>(r.p99_us), r.errors,
              static_cast<unsigned long long>(r.digest));
  return 0;
}

// ---- parent orchestration ------------------------------------------------

/// Run the driver child against `addr` and parse its RESULT line. popen
/// (not an in-process thread) keeps the client fd population in a separate
/// process fd table from the daemon's server-side fds.
DriveResult run_driver(const std::string& self, const net::SocketAddr& addr,
                       std::uint64_t seed, std::size_t parties, std::size_t conns,
                       std::size_t requests, std::size_t active) {
  char cmd[512];
  std::snprintf(cmd, sizeof cmd, "'%s' --drive %s %llu %zu %zu %zu %zu", self.c_str(),
                addr.to_string().c_str(), static_cast<unsigned long long>(seed), parties,
                conns, requests, active);
  FILE* pipe = ::popen(cmd, "r");
  if (pipe == nullptr) {
    std::fprintf(stderr, "FAIL: cannot spawn driver: %s\n", cmd);
    std::exit(1);
  }
  DriveResult r;
  bool got_result = false;
  char line[512];
  while (std::fgets(line, sizeof line, pipe) != nullptr) {
    long long elapsed = 0, p50 = 0, p95 = 0, p99 = 0;
    unsigned long long digest = 0;
    if (std::sscanf(line,
                    "RESULT conns=%zu welcomed=%zu completed=%zu elapsed_us=%lld "
                    "p50_us=%lld p95_us=%lld p99_us=%lld errors=%zu digest=%llu",
                    &r.conns, &r.welcomed, &r.completed, &elapsed, &p50, &p95, &p99,
                    &r.errors, &digest) == 9) {
      r.elapsed_us = elapsed;
      r.p50_us = p50;
      r.p95_us = p95;
      r.p99_us = p99;
      r.digest = digest;
      got_result = true;
    }
  }
  const int status = ::pclose(pipe);
  if (!got_result || status != 0) {
    std::fprintf(stderr, "FAIL: driver run did not complete (%s)\n", cmd);
    std::exit(1);
  }
  return r;
}

struct Run {
  const char* door = "";
  std::size_t conns = 0;
  DriveResult result;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--drive") == 0) return drive_main(argc, argv);

  std::size_t requests = 6000;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      requests = 2500;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: socket_throughput [--quick] [--full] [--requests N]\n");
      return 2;
    }
  }
  const std::size_t parties = 3;
  const std::uint64_t seed = 20260808;
  const std::size_t active = 4;
  const std::size_t soak_conns = 10'000, soak_requests = 10'000;

  // One daemon serves every run: exchange once over the hub, then the k
  // party connections stay open (the daemon exits when they drop) while
  // driver children hammer first the hub door, then the reactor door.
  // Small pool on purpose: the serving cost per request must be modest so
  // the bench measures the FRONT DOOR (scan/wake/flush per request), not
  // the mining job itself.
  const Dataset base = sap::bench::normalized_uci("Diabetes", seed).slice(0, 210);
  sap::rng::Engine part_eng(seed ^ 0x50C4);
  auto shards = sap::data::partition(base, parties, {}, part_eng);
  auto sap_opts = sap::bench::bench_sap_options();
  sap_opts.seed = seed;

  net::MinerDaemonOptions daemon_opts;
  daemon_opts.listen = {"127.0.0.1", 0};
  daemon_opts.parties = parties;
  daemon_opts.seed = seed;
  daemon_opts.reactor_loops = 2;
  daemon_opts.reactor_compute_threads = 1;
  daemon_opts.reactor_idle_timeout_ms = 300'000;  // idle conns ARE the workload
  net::MinerDaemon daemon(daemon_opts);
  const auto hub_addr = daemon.local_addr();
  auto daemon_future = std::async(std::launch::async, [&] { return daemon.run(); });

  std::promise<void> serving_promise;
  auto serving = serving_promise.get_future();
  std::promise<void> release_promise;
  std::shared_future<void> release(release_promise.get_future());
  std::vector<std::thread> party_threads;
  for (std::size_t i = 0; i < parties; ++i) {
    party_threads.emplace_back([&, i] {
      net::PartyClientOptions popts;
      popts.connect = hub_addr;
      popts.index = i;
      popts.parties = parties;
      popts.sap = sap_opts;
      net::PartyClient client(shards[i], popts);
      (void)client.run_exchange();
      if (i == 0) {
        // Blocks until the daemon installed the pool and serves — from here
        // on both front doors answer, and the model cache is warm.
        (void)client.mine_named(kJob);
        serving_promise.set_value();
      }
      release.wait();
      client.finish();
    });
  }
  serving.wait();

  // Direct-engine reference: the digest every front-door run must reproduce.
  const std::vector<double> direct =
      proto::encode_mining_response(
          [&] {
            const auto resp = daemon.engine().run({kJob, {}});
            proto::WireMiningResponse wire;
            wire.values = resp.values;
            wire.model_cached = resp.model_cached;
            wire.model_incremental = resp.model_incremental;
            wire.pool_epoch = resp.pool_epoch;
            return wire;
          }());
  const auto expected_digest = [&](std::size_t n) {
    std::uint64_t h = kFnvOffset;
    for (std::size_t i = 0; i < n; ++i) h = fnv_values(h, direct);
    return h;
  };

  // Trainable-job bit-identity, one full round trip per door: the served
  // nb-train-accuracy report must equal the direct engine's bit for bit.
  const std::vector<double> direct_nb = daemon.engine().run({kTrainableJob, {}}).values;
  bool nb_identical = true;
  for (const auto& [door, addr] :
       {std::pair<const char*, net::SocketAddr>{"legacy-hub", hub_addr},
        {"epoll-reactor", daemon.reactor_addr()}}) {
    net::ServeClient probe(addr, seed, parties);
    const auto served = probe.mine_named(kTrainableJob);
    if (fnv_values(kFnvOffset, served.values) != fnv_values(kFnvOffset, direct_nb)) {
      std::fprintf(stderr, "FAIL: %s %s differs from the direct engine\n", door, kTrainableJob);
      nb_identical = false;
    }
    probe.bye();
  }

  const std::string self = argv[0];
  std::vector<Run> runs;
  for (const std::size_t conns : {std::size_t{100}, std::size_t{1000}}) {
    runs.push_back({"legacy-hub", conns,
                    run_driver(self, hub_addr, seed, parties, conns, requests, active)});
  }
  for (const std::size_t conns : {std::size_t{100}, std::size_t{1000}}) {
    runs.push_back({"epoll-reactor", conns,
                    run_driver(self, daemon.reactor_addr(), seed, parties, conns, requests,
                               active)});
  }
  if (full) {
    runs.push_back({"epoll-reactor", soak_conns,
                    run_driver(self, daemon.reactor_addr(), seed, parties, soak_conns,
                               soak_requests, active)});
  }

  // The floor comparison shares one noisy machine with the driver child;
  // one re-measure of the two 1000-client runs (keeping each door's best)
  // filters scheduler flukes without letting a real regression through.
  const auto req_per_sec = [](const DriveResult& r) {
    return static_cast<double>(r.completed) * 1e6 / static_cast<double>(r.elapsed_us);
  };
  const auto run_at_1k = [&](const char* door) -> Run& {
    for (Run& run : runs) {
      if (run.conns == 1000 && std::strcmp(run.door, door) == 0) return run;
    }
    std::fprintf(stderr, "FAIL: missing 1000-client run\n");
    std::exit(1);
  };
  Run& legacy_1k = run_at_1k("legacy-hub");
  Run& reactor_1k = run_at_1k("epoll-reactor");
  if (req_per_sec(reactor_1k.result) < 3.0 * req_per_sec(legacy_1k.result)) {
    const auto redo_l = run_driver(self, hub_addr, seed, parties, 1000, requests, active);
    const auto redo_r =
        run_driver(self, daemon.reactor_addr(), seed, parties, 1000, requests, active);
    if (req_per_sec(redo_l) > req_per_sec(legacy_1k.result)) legacy_1k.result = redo_l;
    if (req_per_sec(redo_r) > req_per_sec(reactor_1k.result)) reactor_1k.result = redo_r;
  }

  release_promise.set_value();
  for (auto& t : party_threads) t.join();
  const auto summary = daemon_future.get();
  (void)summary;

  Table table({"front door", "clients", "active", "requests", "req/s", "p50 us", "p95 us",
               "p99 us", "errors"});
  for (const Run& run : runs) {
    table.add_row({run.door, std::to_string(run.conns), std::to_string(active),
                   std::to_string(run.result.completed), Table::num(req_per_sec(run.result), 1),
                   std::to_string(run.result.p50_us), std::to_string(run.result.p95_us),
                   std::to_string(run.result.p99_us), std::to_string(run.result.errors)});
  }
  sap::bench::emit_table("socket_throughput", table,
                         {.transport = "legacy-hub vs epoll-reactor",
                          .threads = daemon_opts.reactor_loops});

  // ---- enforced floors ---------------------------------------------------
  bool ok = nb_identical;
  for (const Run& run : runs) {
    if (run.result.welcomed != run.conns || run.result.errors != 0 ||
        run.result.completed < (run.conns == soak_conns ? soak_requests : requests)) {
      std::fprintf(stderr, "FAIL: %s @%zu clients: welcomed %zu/%zu, completed %zu, errors %zu\n",
                   run.door, run.conns, run.result.welcomed, run.conns, run.result.completed,
                   run.result.errors);
      ok = false;
    }
    if (run.result.digest != expected_digest(run.result.completed)) {
      std::fprintf(stderr, "FAIL: %s @%zu clients served values differ from the direct engine\n",
                   run.door, run.conns);
      ok = false;
    }
  }
  const double ratio = req_per_sec(reactor_1k.result) / req_per_sec(legacy_1k.result);
  std::printf("\nreactor serves %.1fx the legacy hub's req/s at 1000 connected clients\n", ratio);
  if (!(ratio >= 3.0)) {
    std::fprintf(stderr, "FAIL: reactor must serve >= 3x the legacy hub at 1000 clients "
                         "(got %.2fx)\n", ratio);
    ok = false;
  }
  if (ok) std::printf("front-door values bit-identical to the direct engine: yes\n");
  return ok ? 0 : 1;
}
