// Ablation Abl-3: protocol cost scaling with the number of parties k.
//
// Reports, per k: source identifiability pi = 1/(k-1), wire bytes (total and
// data-plane share), message count, and wall time. Expectation: pi decays
// hyperbolically (the privacy benefit of more parties), while bytes stay
// within a constant factor of 2x the raw data volume (each record crosses
// exactly two encrypted hops) plus O(k) adaptor overhead.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"

int main() {
  using namespace sap;
  const std::string dataset = "Credit_g";  // 1000 records, 24 dims

  std::printf("== Ablation: protocol cost vs number of parties (%s) ==\n\n",
              dataset.c_str());

  Table table({"k", "pi=1/(k-1)", "messages", "total KiB", "KiB/record", "ms"});
  for (std::size_t k = 3; k <= 12; ++k) {
    const data::Dataset pool = bench::normalized_uci(dataset, 8);
    rng::Engine eng(31 + k);
    data::PartitionOptions popts;
    auto parts = data::partition(pool, k, popts, eng);

    auto opts = bench::bench_sap_options();
    opts.optimizer.candidates = 2;  // cost bench: minimal optimization
    opts.optimizer.refine_steps = 0;
    opts.seed = 41 + k;
    proto::SapProtocol protocol(std::move(parts), opts);

    Stopwatch sw;
    const auto result = protocol.run();
    const double ms = sw.millis();

    table.add_row({std::to_string(k), Table::num(1.0 / static_cast<double>(k - 1)),
                   std::to_string(result.messages),
                   Table::num(static_cast<double>(result.total_bytes) / 1024.0, 1),
                   Table::num(static_cast<double>(result.total_bytes) / 1024.0 /
                                  static_cast<double>(result.unified.size()),
                              3),
                   Table::num(ms, 1)});
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf("\nexpected: pi ~ 1/(k-1); KiB/record roughly flat (2 data hops + O(k) control).\n");
  return 0;
}
