// Ablation Abl-3: protocol cost scaling with the number of parties k.
//
// Reports, per k: source identifiability pi = 1/(k-1), wire bytes (total and
// data-plane share), message count, and wall time under BOTH transport
// backends — the synchronous SimulatedNetwork and the concurrent
// ThreadedLocalTransport (one worker per party; local optimization and
// perturbation parallelize across providers). Expectation: pi decays
// hyperbolically (the privacy benefit of more parties), bytes stay within a
// constant factor of 2x the raw data volume (each record crosses exactly two
// encrypted hops) plus O(k) adaptor overhead, and the two backends' wall
// times stay comparable here (this bench minimizes per-party compute; the
// threaded payoff shows in optimize-heavy runs, cf. micro_perturb).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"

int main() {
  using namespace sap;
  const std::string dataset = "Credit_g";  // 1000 records, 24 dims

  std::printf("== Ablation: protocol cost vs number of parties (%s) ==\n\n",
              dataset.c_str());

  Table table({"k", "pi=1/(k-1)", "messages", "total KiB", "KiB/record", "ms sim",
               "ms threaded"});
  for (std::size_t k = 3; k <= 12; ++k) {
    auto run_with = [&](proto::TransportKind transport, proto::SapResult* out) {
      const data::Dataset pool = bench::normalized_uci(dataset, 8);
      rng::Engine eng(31 + k);
      data::PartitionOptions popts;
      auto parts = data::partition(pool, k, popts, eng);

      auto opts = bench::bench_sap_options();
      opts.optimizer.candidates = 2;  // cost bench: minimal optimization
      opts.optimizer.refine_steps = 0;
      opts.seed = 41 + k;
      opts.transport = transport;
      proto::SapSession session(std::move(parts), opts);

      Stopwatch sw;
      auto result = session.run();
      if (out) *out = std::move(result);
      return sw.millis();
    };

    proto::SapResult result;
    const double ms_sim = run_with(proto::TransportKind::kSimulated, &result);
    const double ms_threaded = run_with(proto::TransportKind::kThreadedLocal, nullptr);

    table.add_row({std::to_string(k), Table::num(1.0 / static_cast<double>(k - 1)),
                   std::to_string(result.messages),
                   Table::num(static_cast<double>(result.total_bytes) / 1024.0, 1),
                   Table::num(static_cast<double>(result.total_bytes) / 1024.0 /
                                  static_cast<double>(result.unified.size()),
                              3),
                   Table::num(ms_sim, 1), Table::num(ms_threaded, 1)});
  }
  bench::emit_table("protocol_scaling", table);
  std::printf("\nexpected: pi ~ 1/(k-1); KiB/record roughly flat (2 data hops + O(k)\n"
              "control); sim and threaded comparable here (tiny per-party compute) —\n"
              "the threaded backend pays off when local optimization dominates.\n");
  return 0;
}
