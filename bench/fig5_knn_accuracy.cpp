// Figure 5 reproduction: average deviation of KNN model accuracy when the
// classifier is trained on SAP-unified perturbed data instead of the
// original data, across the 12 UCI datasets, for SAP-Uniform and SAP-Class
// partition distributions.
//
// Deviation is in percentage points; negative means the perturbed pipeline
// lost accuracy. Paper shape: deviations within a few points of zero
// (KNN is distance-based, and SAP preserves distances up to the noise term),
// with no systematic difference between Uniform and Class partitioning.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "classify/knn.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"

int main() {
  using namespace sap;
  const std::size_t kParties = 4;
  const std::vector<std::uint64_t> seeds{11, 22, 33};

  std::printf("== Figure 5: KNN(5) accuracy deviation under SAP (percentage points) ==\n");
  std::printf("(k=%zu parties, %zu seeds averaged, sigma=%.2f)\n\n", kParties, seeds.size(),
              bench::bench_sap_options().noise_sigma);

  Stopwatch sw;
  Table table({"dataset", "baseline acc", "SAP-Uniform dev", "SAP-Class dev"});
  double worst = 0.0;
  for (const auto& spec : data::uci_suite()) {
    double base_sum = 0.0, dev_uniform = 0.0, dev_class = 0.0;
    for (const auto seed : seeds) {
      const auto [base_u, dev_u] = bench::accuracy_deviation<ml::Knn>(
          spec.name, data::PartitionKind::kUniform, kParties, seed,
          bench::bench_sap_options());
      const auto [base_c, dev_c] = bench::accuracy_deviation<ml::Knn>(
          spec.name, data::PartitionKind::kClass, kParties, seed,
          bench::bench_sap_options());
      base_sum += 0.5 * (base_u + base_c);
      dev_uniform += dev_u;
      dev_class += dev_c;
    }
    const auto n = static_cast<double>(seeds.size());
    table.add_row({spec.name, Table::num(base_sum / n * 100.0, 1),
                   Table::num(dev_uniform / n, 2), Table::num(dev_class / n, 2)});
    worst = std::min({worst, dev_uniform / n, dev_class / n});
  }
  bench::emit_table("fig5_knn_accuracy", table);
  std::printf("\npaper-shape check: deviations within single digits of zero "
              "(paper: -7..+3 points); worst here = %.2f.  elapsed=%.1fs\n", worst,
              sw.seconds());
  return 0;
}
