// Ablation Abl-4: attack-suite composition.
//
// How does the measured minimum privacy guarantee rho change as the
// adversary gets stronger? Reports rho for a random and an optimized
// perturbation under: naive only; naive+ICA; naive+ICA+known-input with
// m = 2/4/8/16 known records. Expectation: rho is non-increasing as attacks
// are added (min over a superset), the known-input attack dominates once m
// is moderate, and optimization helps most against the weaker suites.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "optimize/optimizer.hpp"

int main() {
  using namespace sap;
  const std::string dataset = "Diabetes";
  const double sigma = 0.1;

  std::printf("== Ablation: attack-suite composition vs measured rho (%s, sigma=%.2f) ==\n\n",
              dataset.c_str(), sigma);

  const data::Dataset pool = bench::normalized_uci(dataset, 9);
  const linalg::Matrix x = pool.features_T();

  struct SuiteSpec {
    std::string label;
    privacy::AttackSuiteOptions attacks;
  };
  std::vector<SuiteSpec> suites{
      {"naive only", {.naive = true, .ica = false, .known_inputs = 0}},
      {"naive+ICA", {.naive = true, .ica = true, .known_inputs = 0}},
      {"naive+ICA+known(2)", {.naive = true, .ica = true, .known_inputs = 2}},
      {"naive+ICA+known(4)", {.naive = true, .ica = true, .known_inputs = 4}},
      {"naive+ICA+known(8)", {.naive = true, .ica = true, .known_inputs = 8}},
      {"naive+ICA+known(16)", {.naive = true, .ica = true, .known_inputs = 16}},
  };

  // Fixed perturbations so rows are comparable: a pool of random draws
  // (averaged — a single draw is too noisy to compare against) and one
  // perturbation optimized against the strongest suite.
  rng::Engine eng(43);
  std::vector<perturb::GeometricPerturbation> random_pool;
  for (int i = 0; i < 6; ++i)
    random_pool.push_back(perturb::GeometricPerturbation::random(x.rows(), sigma, eng));
  opt::OptimizerOptions oopts;
  oopts.candidates = 16;
  oopts.refine_steps = 8;
  oopts.noise_sigma = sigma;
  oopts.max_eval_records = 140;
  oopts.attacks = suites.back().attacks;
  const auto g_optimized = opt::optimize_perturbation(x, oopts, eng).best;

  Table table({"attack suite", "rho(random G, mean of 6)", "rho(optimized G)"});
  const int kRepeats = 4;  // average over eval subsample/noise randomness
  for (const auto& suite : suites) {
    double rho_rand = 0.0, rho_opt = 0.0;
    for (int r = 0; r < kRepeats; ++r) {
      for (const auto& g : random_pool)
        rho_rand += opt::evaluate_perturbation(x, g, suite.attacks, 140, eng);
      rho_opt += opt::evaluate_perturbation(x, g_optimized, suite.attacks, 140, eng);
    }
    table.add_row({suite.label,
                   Table::num(rho_rand / (kRepeats * static_cast<double>(random_pool.size()))),
                   Table::num(rho_opt / kRepeats)});
  }
  bench::emit_table("attack_suite", table);
  std::printf("\nexpected: rho non-increasing down the table; the known-input attack\n"
              "bites as m grows; optimized G above the random-G mean on the suite it\n"
              "was optimized against (the bottom row).\n");
  return 0;
}
