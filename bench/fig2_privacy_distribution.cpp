// Figure 2 reproduction: distribution of the minimum privacy guarantee rho
// for RANDOM geometric perturbations versus OPTIMIZED ones.
//
// The paper's claim (illustrated, not tabulated): the optimizer shifts the
// rho distribution to the right — optimized perturbations give a higher
// privacy guarantee on average, concentrating near the empirical bound b.
//
// Output: a text histogram of both distributions plus summary stats.
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "optimize/optimizer.hpp"

int main() {
  using namespace sap;
  const std::string dataset = "Diabetes";
  const std::size_t kRandomDraws = 300;
  const std::size_t kOptimizedRuns = 100;

  std::printf("== Figure 2: privacy-guarantee distribution, dataset=%s ==\n",
              dataset.c_str());
  std::printf("(random: %zu draws; optimized: %zu runs of the randomized optimizer)\n\n",
              kRandomDraws, kOptimizedRuns);

  const data::Dataset pool = bench::normalized_uci(dataset, 2);
  const linalg::Matrix x = pool.features_T();

  opt::OptimizerOptions opts;
  opts.candidates = 8;
  opts.refine_steps = 4;
  opts.noise_sigma = 0.1;
  opts.max_eval_records = 120;
  opts.attacks = {.naive = true, .ica = false, .known_inputs = 4};

  rng::Engine eng(42);
  std::vector<double> random_rhos;
  while (random_rhos.size() < kRandomDraws) {
    const auto g = perturb::GeometricPerturbation::random(x.rows(), opts.noise_sigma, eng);
    random_rhos.push_back(
        opt::evaluate_perturbation(x, g, opts.attacks, opts.max_eval_records, eng));
  }

  std::vector<double> optimized_rhos;
  for (std::size_t run = 0; run < kOptimizedRuns; ++run)
    optimized_rhos.push_back(opt::optimize_perturbation(x, opts, eng).best_rho);

  auto stats = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const double mean =
        std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
    return std::tuple{v.front(), mean, v[v.size() / 2], v.back()};
  };
  const auto [rmin, rmean, rmed, rmax] = stats(random_rhos);
  const auto [omin, omean, omed, omax] = stats(optimized_rhos);

  Table summary({"perturbations", "min", "mean", "median", "max (b-hat)"});
  summary.add_row({"random", Table::num(rmin), Table::num(rmean), Table::num(rmed),
                   Table::num(rmax)});
  summary.add_row({"optimized", Table::num(omin), Table::num(omean), Table::num(omed),
                   Table::num(omax)});
  std::fputs(summary.str().c_str(), stdout);

  // Histogram over the combined range.
  const double lo = std::min(rmin, omin);
  const double hi = std::max(rmax, omax) + 1e-9;
  const int kBuckets = 12;
  auto histogram = [&](const std::vector<double>& v) {
    std::vector<int> h(kBuckets, 0);
    for (double r : v) {
      int b = static_cast<int>((r - lo) / (hi - lo) * kBuckets);
      b = std::clamp(b, 0, kBuckets - 1);
      ++h[b];
    }
    return h;
  };
  const auto hr = histogram(random_rhos);
  const auto ho = histogram(optimized_rhos);

  std::printf("\nrho bucket        random     optimized\n");
  std::printf("---------------------------------------\n");
  for (int b = 0; b < kBuckets; ++b) {
    const double b_lo = lo + (hi - lo) * b / kBuckets;
    const double b_hi = lo + (hi - lo) * (b + 1) / kBuckets;
    std::string bar_r(static_cast<std::size_t>(hr[b] * 40 / std::max(1, static_cast<int>(random_rhos.size()))), '#');
    std::string bar_o(static_cast<std::size_t>(ho[b] * 40 / std::max(1, static_cast<int>(optimized_rhos.size()))), '*');
    std::printf("[%.3f,%.3f)  %4d %-12s %4d %s\n", b_lo, b_hi, hr[b], bar_r.c_str(), ho[b],
                bar_o.c_str());
  }
  std::printf("\npaper-shape check: optimized mean (%.3f) > random mean (%.3f): %s\n",
              omean, rmean, omean > rmean ? "YES" : "NO");
  return 0;
}
