// Baseline comparison: SAP versus direct submission (no space adaptation).
//
// The paper's value proposition in one table: both protocols deliver the
// same unified dataset to the miner (identical utility), but SAP divides
// the privacy-breach risk of an identified source by (k-1) at the cost of
// one extra data hop. This bench measures, for growing k:
//   * mean risk eq. (1) under each protocol (pi = 1/(k-1) vs pi = 1),
//   * total wire bytes (SAP pays ~2x data-plane),
//   * unified-pool KNN accuracy (must be statistically identical).
#include <cstdio>

#include "bench_util.hpp"
#include "classify/knn.hpp"
#include "common/table.hpp"
#include "protocol/baseline.hpp"

int main() {
  using namespace sap;
  const std::string dataset = "Diabetes";

  std::printf("== Baseline: SAP vs direct submission (%s) ==\n\n", dataset.c_str());

  Table table({"k", "risk eq(1) SAP", "risk eq(1) direct", "KiB SAP", "KiB direct",
               "KNN acc SAP %", "KNN acc direct %"});
  const std::vector<std::uint64_t> seeds{30, 31, 32};  // accuracy is run-noisy
  for (const std::size_t k : {3, 5, 8, 12}) {
    double risk_sap = 0.0, risk_direct = 0.0, acc_sap = 0.0, acc_direct = 0.0;
    double kib_sap = 0.0, kib_direct = 0.0;
    for (const auto seed : seeds) {
      const data::Dataset pool = bench::normalized_uci(dataset, seed);
      rng::Engine eng(700 + k + seed);
      const auto split = data::stratified_split(pool, 0.7, eng);
      data::PartitionOptions popts;
      auto shards_sap = data::partition(split.train, k, popts, eng);
      auto shards_direct = shards_sap;

      auto opts = bench::bench_sap_options();
      opts.compute_satisfaction = true;
      opts.seed = 800 + k + seed;

      proto::SapSession sap_session(std::move(shards_sap), opts);
      const auto sap_result = sap_session.run();
      proto::DirectSubmissionProtocol direct_protocol(std::move(shards_direct), opts);
      const auto direct_result = direct_protocol.run();

      auto mean_risk = [](const proto::SapResult& r) {
        double acc = 0.0;
        for (const auto& p : r.parties) acc += p.risk_breach;
        return acc / static_cast<double>(r.parties.size());
      };
      auto knn_acc = [&](const proto::SapResult& r) {
        ml::Knn knn(5);
        knn.fit(r.unified);
        const data::Dataset test_t = bench::to_target_space(split.test, r.target_space);
        return ml::accuracy(knn, test_t) * 100.0;
      };
      risk_sap += mean_risk(sap_result);
      risk_direct += mean_risk(direct_result);
      acc_sap += knn_acc(sap_result);
      acc_direct += knn_acc(direct_result);
      kib_sap += static_cast<double>(sap_result.total_bytes) / 1024.0;
      kib_direct += static_cast<double>(direct_result.total_bytes) / 1024.0;
    }
    const auto n = static_cast<double>(seeds.size());
    table.add_row({std::to_string(k), Table::num(risk_sap / n),
                   Table::num(risk_direct / n), Table::num(kib_sap / n, 1),
                   Table::num(kib_direct / n, 1), Table::num(acc_sap / n, 1),
                   Table::num(acc_direct / n, 1)});
  }
  bench::emit_table("baseline_direct_vs_sap", table);
  std::printf("\nexpected: SAP risk ~ direct risk / (k-1); SAP bytes ~ 2x direct\n"
              "(one extra data hop) plus adaptor routing; accuracies equivalent.\n");
  return 0;
}
