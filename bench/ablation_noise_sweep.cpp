// Ablation Abl-1: the privacy/utility dial.
//
// Sweeps the common noise level sigma and reports, for one dataset:
//   * the minimum privacy guarantee rho under the full attack suite
//     (naive + ICA + known-input) for an optimized perturbation,
//   * KNN and SVM accuracy when trained in the SAP-unified space.
//
// Expectation: rho rises monotonically with sigma (noise is the only
// defense against the known-input attack), while accuracy decays smoothly —
// the trade-off the paper's perturbation design balances.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "classify/knn.hpp"
#include "classify/svm.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "optimize/optimizer.hpp"

int main() {
  using namespace sap;
  const std::string dataset = "Diabetes";
  const std::vector<double> sigmas{0.0, 0.05, 0.1, 0.2, 0.4, 0.8};

  std::printf("== Ablation: noise level sigma vs privacy and utility (%s) ==\n\n",
              dataset.c_str());

  opt::OptimizerOptions oopts;
  oopts.candidates = 6;
  oopts.refine_steps = 3;
  oopts.max_eval_records = 120;
  oopts.attacks = {.naive = true, .ica = true, .known_inputs = 4};

  Stopwatch sw;
  Table table({"sigma", "rho (full suite)", "KNN acc %", "SVM acc %"});
  const data::Dataset pool = bench::normalized_uci(dataset, 5);
  for (const double sigma : sigmas) {
    oopts.noise_sigma = sigma;
    rng::Engine eng(17);
    const auto opt_res = opt::optimize_perturbation(pool.features_T(), oopts, eng);

    auto sap_opts = bench::bench_sap_options();
    sap_opts.noise_sigma = sigma;
    const auto [base_knn, dev_knn] = bench::accuracy_deviation<ml::Knn>(
        dataset, data::PartitionKind::kUniform, 4, 7, sap_opts);
    const auto [base_svm, dev_svm] = bench::accuracy_deviation<ml::Svm>(
        dataset, data::PartitionKind::kUniform, 4, 7, sap_opts);

    table.add_row({Table::num(sigma, 2), Table::num(opt_res.best_rho),
                   Table::num(base_knn * 100.0 + dev_knn, 1),
                   Table::num(base_svm * 100.0 + dev_svm, 1)});
  }
  bench::emit_table("noise_sweep", table);
  std::printf("\nexpected: rho increases with sigma; accuracy decays.  elapsed=%.1fs\n",
              sw.seconds());
  return 0;
}
