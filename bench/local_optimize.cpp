// LocalOptimize bench: fused kernels + deterministic parallel candidate
// search vs the pre-PR serial pipeline, plus the bit-identity invariants.
//
// Part 1 (timing, d=34 perturb shape): one provider's LocalOptimize run —
// optimize_perturbation with the serving attack profile (naive +
// known-input; the profile `serving_session_options` deploys) — measured
// three ways:
//
//   baseline   the pre-PR pipeline, frozen verbatim in namespace prepr:
//              naive ikj matmul + translation pass + noise pass, per-pair
//              pearson candidate-pool scoring, column-layout Jacobi SVD
//              Procrustes, single-stream serial candidate loop;
//   fused 0T   today's optimize_perturbation, serial (blocked GEMM with
//              epilogue-fused translation, scratch-hoisted attack suite,
//              rank-reduced Procrustes, per-candidate engines);
//   fused 2/8T the same with a 2- and 8-worker scoring pool.
//
// Acceptance bars (exit code 1 on failure):
//   * fused 8-thread  >= 3.0x over the pre-PR baseline,
//   * fused serial    >= 1.5x over the pre-PR baseline,
//   * optimize_perturbation bit-identical across {0, 2, 8} threads,
//   * a full SapSession bit-identical across kSimulated / kThreaded / kTcp
//     with DIFFERENT per-run optimizer thread counts (both axes at once).
//
// Also reported (not gated): fused vs unfused apply, scratch-reuse vs
// per-call evaluate, and the candidate/probe evaluation counts.
//
// Output: aligned table on stdout + BENCH_local_optimize.json.
// Usage: local_optimize [--quick]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <vector>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "linalg/decompose.hpp"
#include "linalg/orthogonal.hpp"
#include "linalg/stats.hpp"
#include "net/remote.hpp"
#include "net/tcp_transport.hpp"
#include "optimize/optimizer.hpp"
#include "privacy/evaluator.hpp"
#include "privacy/metric.hpp"

namespace {

using sap::linalg::Matrix;
using sap::linalg::Vector;
using sap::perturb::GeometricPerturbation;
using sap::rng::Engine;

// ---- pre-PR pipeline, frozen for an honest wall-clock baseline -----------
//
// Everything below reproduces the code as it stood before this change:
// the kernels it calls (matmul_naive, pearson via candidate_pool_privacy,
// the column-layout Jacobi sweep) and the single-stream candidate loop.
namespace prepr {

struct Options {
  std::size_t candidates = 12;
  std::size_t refine_steps = 8;
  double refine_angle = 0.35;
  double noise_sigma = 0.1;
  std::size_t max_eval_records = 160;
  std::size_t known_inputs = 4;
};

Matrix subsample(const Matrix& x, std::size_t max_records, Engine& eng) {
  if (x.cols() <= max_records) return x;
  const auto idx = eng.sample_without_replacement(x.cols(), max_records);
  Matrix out(x.rows(), max_records);
  for (std::size_t j = 0; j < max_records; ++j) {
    const Vector col = x.col(idx[j]);
    out.set_col(j, col);
  }
  return out;
}

Matrix apply(const GeometricPerturbation& g, const Matrix& x, Engine& noise_eng) {
  Matrix y = sap::linalg::matmul_naive(g.rotation(), x);
  for (std::size_t i = 0; i < y.rows(); ++i) {
    auto row = y.row(i);
    for (auto& v : row) v += g.translation()[i];
  }
  if (g.noise_sigma() > 0.0) {
    for (auto& v : y.data()) v += noise_eng.normal(0.0, g.noise_sigma());
  }
  return y;
}

/// The pre-PR one-sided Jacobi SVD: column-layout element access.
struct SvdRef {
  Matrix u;
  Vector s;
  Matrix v;
};

SvdRef svd_ref(const Matrix& a, double tol = 1e-12, int max_sweeps = 64) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m < n) {
    SvdRef t = svd_ref(a.transpose(), tol, max_sweeps);
    return {std::move(t.v), std::move(t.s), std::move(t.u)};
  }
  Matrix w = a;
  Matrix v = Matrix::identity(n);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          alpha += w(i, p) * w(i, p);
          beta += w(i, q) * w(i, q);
          gamma += w(i, p) * w(i, q);
        }
        if (std::abs(gamma) <= tol * std::sqrt(alpha * beta) || gamma == 0.0) continue;
        rotated = true;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          const double wip = w(i, p);
          const double wiq = w(i, q);
          w(i, p) = c * wip - s * wiq;
          w(i, q) = s * wip + c * wiq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
    if (!rotated) break;
  }
  SvdRef out;
  out.s.resize(n);
  out.u = Matrix(m, n);
  out.v = std::move(v);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  Vector norms(n);
  for (std::size_t j = 0; j < n; ++j) norms[j] = sap::linalg::norm2(w.col(j));
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return norms[x] > norms[y]; });
  Matrix vsorted(n, n);
  std::vector<std::size_t> null_cols;
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    out.s[j] = norms[src];
    Vector ucol = w.col(src);
    if (norms[src] > 1e-300) {
      for (auto& x : ucol) x /= norms[src];
    } else {
      std::fill(ucol.begin(), ucol.end(), 0.0);
      null_cols.push_back(j);
    }
    out.u.set_col(j, ucol);
    const Vector vcol = out.v.col(src);
    vsorted.set_col(j, vcol);
  }
  out.v = std::move(vsorted);
  for (const std::size_t j : null_cols) {
    bool placed = false;
    for (std::size_t e = 0; e < m && !placed; ++e) {
      Vector vv(m, 0.0);
      vv[e] = 1.0;
      for (std::size_t c = 0; c < n; ++c) {
        if (c == j) continue;
        const Vector uc = out.u.col(c);
        const double proj = sap::linalg::dot(uc, vv);
        for (std::size_t i = 0; i < m; ++i) vv[i] -= proj * uc[i];
      }
      const double residual = sap::linalg::norm2(vv);
      if (residual > 1e-6) {
        for (auto& x : vv) x /= residual;
        out.u.set_col(j, vv);
        placed = true;
      }
    }
  }
  return out;
}

Matrix procrustes_ref(const Matrix& src, const Matrix& dst) {
  const Matrix cross = sap::linalg::matmul_naive(dst, src.transpose());
  const SvdRef f = svd_ref(cross);
  return sap::linalg::matmul_naive(f.u, f.v.transpose());
}

/// Pre-PR AttackSuite::evaluate for {naive, known-input}: per-call row
/// stats, per-column gathers, the d x N reconstruction copies, and the
/// d x d-SVD Procrustes.
double evaluate_ref(const Matrix& original, const Matrix& perturbed,
                    std::size_t known_inputs, Engine& eng) {
  const Vector means = sap::linalg::row_means(original);
  const Vector stddevs = sap::linalg::row_stddev(original);
  (void)means;
  (void)stddevs;
  const std::size_t d = original.rows();
  const std::size_t m = std::min<std::size_t>(known_inputs, original.cols());
  const auto idx = eng.sample_without_replacement(original.cols(), m);
  Matrix known(d, m);
  for (std::size_t j = 0; j < m; ++j) {
    const Vector col = original.col(idx[j]);
    known.set_col(j, col);
  }

  // Naive attack: the candidate pool IS the perturbed matrix (copied, as the
  // pre-PR Reconstruction did); candidate_pool_privacy is still the
  // unchanged pearson-loop reference.
  const Matrix pool_copy = perturbed;
  const Vector p_naive = sap::privacy::candidate_pool_privacy(original, pool_copy);
  double rho = *std::min_element(p_naive.begin(), p_naive.end());

  // Known-input attack (attacks.cpp, pre-PR kernels).
  Matrix y_known(d, m);
  for (std::size_t j = 0; j < m; ++j) {
    const Vector col = perturbed.col(idx[j]);
    y_known.set_col(j, col);
  }
  const Vector cx = sap::linalg::row_means(known);
  const Vector cy = sap::linalg::row_means(y_known);
  Matrix x0 = known;
  Matrix y0 = y_known;
  for (std::size_t i = 0; i < d; ++i) {
    auto xr = x0.row(i);
    for (auto& v : xr) v -= cx[i];
    auto yr = y0.row(i);
    for (auto& v : yr) v -= cy[i];
  }
  const Matrix r_hat = procrustes_ref(x0, y0);
  const Vector r_cx = r_hat.matvec(cx);
  Vector t_hat(d);
  for (std::size_t i = 0; i < d; ++i) t_hat[i] = cy[i] - r_cx[i];
  Matrix shifted = perturbed;
  for (std::size_t i = 0; i < d; ++i) {
    auto row = shifted.row(i);
    for (auto& v : row) v -= t_hat[i];
  }
  const Matrix x_hat = sap::linalg::matmul_naive(r_hat.transpose(), shifted);
  const Vector p_known = sap::privacy::column_privacy(original, x_hat);
  rho = std::min(rho, *std::min_element(p_known.begin(), p_known.end()));
  return rho;
}

double score(const Matrix& x_eval, const GeometricPerturbation& g,
             const Options& opts, Engine& eng) {
  const Matrix y = apply(g, x_eval, eng);
  return evaluate_ref(x_eval, y, opts.known_inputs, eng);
}

/// The pre-PR optimize_perturbation: one RNG stream, serial candidates,
/// single random-sign refinement probe per step.
double optimize(const Matrix& x, const Options& opts, Engine& eng) {
  const Matrix x_eval = subsample(x, opts.max_eval_records, eng);
  const std::size_t d = x.rows();
  GeometricPerturbation best;
  double best_rho = 0.0;
  for (std::size_t c = 0; c < opts.candidates; ++c) {
    auto g = GeometricPerturbation::random(d, opts.noise_sigma, eng);
    const double rho = score(x_eval, g, opts, eng);
    if (rho > best_rho || c == 0) {
      best_rho = rho;
      best = std::move(g);
    }
  }
  double angle = opts.refine_angle;
  for (std::size_t step = 0; step < opts.refine_steps; ++step) {
    const std::size_t p = eng.uniform_index(d);
    std::size_t q = eng.uniform_index(d - 1);
    if (q >= p) ++q;
    const double theta = (eng.bernoulli(0.5) ? 1.0 : -1.0) * angle;
    GeometricPerturbation trial = best;
    trial.precompose_rotation(sap::linalg::givens(d, p, q, theta));
    const double rho = score(x_eval, trial, opts, eng);
    if (rho > best_rho) {
      best_rho = rho;
      best = std::move(trial);
    } else {
      angle *= 0.7;
    }
  }
  return best_rho;
}

}  // namespace prepr

sap::opt::OptimizerOptions bench_optimizer(std::size_t threads) {
  sap::opt::OptimizerOptions o;
  o.candidates = 12;
  o.refine_steps = 8;
  o.max_eval_records = 160;
  o.threads = threads;
  o.attacks = {.naive = true, .ica = false, .known_inputs = 4};
  return o;
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

/// The protocol scenario for the cross-transport identity check.
sap::proto::SapOptions session_opts(sap::proto::TransportKind kind,
                                    std::size_t optimize_threads) {
  auto opts = sap::proto::SapOptions::fast();
  opts.seed = 4242;
  opts.compute_satisfaction = true;
  opts.transport = kind;
  opts.optimizer.threads = optimize_threads;
  return opts;
}

struct SessionFingerprint {
  std::uint64_t pool_digest = 0;
  std::vector<sap::proto::PartyReport> parties;
};

SessionFingerprint run_session(sap::proto::TransportKind kind, std::size_t threads) {
  using namespace sap;
  const data::Dataset pool = bench::normalized_uci("Iris", 4242);
  rng::Engine eng(4242);
  data::PartitionOptions popts;
  auto shards = data::partition(pool, 3, popts, eng);

  SessionFingerprint fp;
  if (kind == proto::TransportKind::kTcp) {
    net::TcpOptions tcp;
    tcp.connect_timeout_ms = 10000;
    tcp.receive_timeout_ms = 30000;
    auto hub = net::TcpTransport::listen({"127.0.0.1", 0}, 0, tcp);
    proto::SapSession session(std::move(shards), session_opts(kind, threads),
                              net::tcp_transport_factory(hub->local_addr(), tcp));
    const auto result = session.run();
    fp.pool_digest = net::dataset_digest(result.unified);
    fp.parties = result.parties;
  } else {
    proto::SapSession session(std::move(shards), session_opts(kind, threads));
    const auto result = session.run();
    fp.pool_digest = net::dataset_digest(result.unified);
    fp.parties = result.parties;
  }
  return fp;
}

bool same_fingerprint(const SessionFingerprint& a, const SessionFingerprint& b) {
  if (a.pool_digest != b.pool_digest || a.parties.size() != b.parties.size())
    return false;
  for (std::size_t i = 0; i < a.parties.size(); ++i) {
    if (a.parties[i].local_rho != b.parties[i].local_rho ||
        a.parties[i].bound != b.parties[i].bound ||
        a.parties[i].satisfaction != b.parties[i].satisfaction ||
        a.parties[i].risk_sap != b.parties[i].risk_sap)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: local_optimize [--quick]\n");
      return 2;
    }
  }
  using namespace sap;

  // d=34 workload (Ionosphere): the perturb shape the protocol actually runs.
  const data::Dataset ds = bench::normalized_uci("Ionosphere", 7);
  const linalg::Matrix x = ds.features_T();
  const std::size_t repeats = quick ? 3 : 7;
  const prepr::Options base_opts;

  std::vector<double> t_base, t_s0, t_s2, t_s8;
  std::size_t evals_base = base_opts.candidates + base_opts.refine_steps;
  std::size_t evals_new = 0;
  for (std::size_t r = 0; r < repeats; ++r) {
    const std::uint64_t seed = 1000 + r;
    {
      Engine eng(seed);
      Stopwatch sw;
      (void)prepr::optimize(x, base_opts, eng);
      t_base.push_back(sw.millis());
    }
    for (auto [threads, sink] :
         {std::pair<std::size_t, std::vector<double>*>{0, &t_s0}, {2, &t_s2}, {8, &t_s8}}) {
      Engine eng(seed);
      Stopwatch sw;
      const auto res = opt::optimize_perturbation(x, bench_optimizer(threads), eng);
      sink->push_back(sw.millis());
      evals_new = res.evaluations;
    }
  }
  const double base_ms = median(t_base);
  const double s0_ms = median(t_s0);
  const double s2_ms = median(t_s2);
  const double s8_ms = median(t_s8);
  const double speedup0 = base_ms / s0_ms;
  const double speedup8 = base_ms / s8_ms;

  // Fused vs unfused apply (translation in the GEMM epilogue + reused output
  // buffer vs naive matmul + translation pass + fresh allocation).
  const std::size_t apply_iters = quick ? 200 : 1000;
  Engine aeng(5);
  const auto g = perturb::GeometricPerturbation::random(x.rows(), 0.1, aeng);
  double apply_unfused_ms = 0.0, apply_fused_ms = 0.0;
  {
    Engine noise(6);
    Stopwatch sw;
    for (std::size_t i = 0; i < apply_iters; ++i) (void)prepr::apply(g, x, noise);
    apply_unfused_ms = sw.millis();
  }
  {
    Engine noise(6);
    linalg::Matrix y;
    Stopwatch sw;
    for (std::size_t i = 0; i < apply_iters; ++i) g.apply_into(x, y, noise);
    apply_fused_ms = sw.millis();
  }

  // Scratch reuse vs per-call scratch in AttackSuite::evaluate.
  const std::size_t eval_iters = quick ? 100 : 400;
  const privacy::AttackSuite suite({.naive = true, .ica = false, .known_inputs = 4});
  Engine eeng(7);
  const linalg::Matrix y_eval = g.apply(x, eeng);
  double eval_percall_ms = 0.0, eval_scratch_ms = 0.0;
  {
    Engine eng(8);
    Stopwatch sw;
    for (std::size_t i = 0; i < eval_iters; ++i) (void)suite.evaluate(x, y_eval, eng);
    eval_percall_ms = sw.millis();
  }
  {
    Engine eng(8);
    auto scratch = suite.make_scratch(x);
    Stopwatch sw;
    for (std::size_t i = 0; i < eval_iters; ++i)
      (void)suite.evaluate(x, y_eval, eng, scratch);
    eval_scratch_ms = sw.millis();
  }

  // ---- bit-identity: thread counts ---------------------------------------
  bool threads_identical = true;
  {
    opt::OptimizationResult ref;
    for (std::size_t threads : {std::size_t{0}, std::size_t{2}, std::size_t{8}}) {
      Engine eng(99);
      auto res = opt::optimize_perturbation(x, bench_optimizer(threads), eng);
      if (threads == 0) {
        ref = std::move(res);
      } else if (res.best_rho != ref.best_rho ||
                 !(res.best.rotation() == ref.best.rotation()) ||
                 res.candidate_rhos != ref.candidate_rhos) {
        threads_identical = false;
      }
    }
  }

  // ---- bit-identity: transports (with different thread counts each) ------
  const auto fp_sim = run_session(proto::TransportKind::kSimulated, 8);
  const auto fp_threaded = run_session(proto::TransportKind::kThreadedLocal, 0);
  const auto fp_tcp = run_session(proto::TransportKind::kTcp, 2);
  const bool transports_identical =
      same_fingerprint(fp_sim, fp_threaded) && same_fingerprint(fp_sim, fp_tcp);

  // ---- report -------------------------------------------------------------
  Table table({"measure", "config", "ms", "speedup", "bar", "status"});
  table.add_row({"local-optimize", "pre-PR serial (" + std::to_string(evals_base) +
                                       " evals)",
                 Table::num(base_ms, 2), "1.00", "-", "baseline"});
  table.add_row({"local-optimize", "fused serial (" + std::to_string(evals_new) +
                                       " evals)",
                 Table::num(s0_ms, 2), Table::num(speedup0, 2), ">=1.5",
                 speedup0 >= 1.5 ? "pass" : "FAIL"});
  table.add_row({"local-optimize", "fused 2 threads", Table::num(s2_ms, 2),
                 Table::num(base_ms / s2_ms, 2), "-", "info"});
  table.add_row({"local-optimize", "fused 8 threads", Table::num(s8_ms, 2),
                 Table::num(speedup8, 2), ">=3.0", speedup8 >= 3.0 ? "pass" : "FAIL"});
  table.add_row({"apply d=34xN", "unfused -> fused",
                 Table::num(apply_fused_ms / static_cast<double>(apply_iters), 4),
                 Table::num(apply_unfused_ms / apply_fused_ms, 2), "-", "info"});
  table.add_row({"attack-suite eval", "per-call -> reused scratch",
                 Table::num(eval_scratch_ms / static_cast<double>(eval_iters), 4),
                 Table::num(eval_percall_ms / eval_scratch_ms, 2), "-", "info"});
  table.add_row({"bit-identity", "threads {0,2,8}", "-", "-", "exact",
                 threads_identical ? "pass" : "FAIL"});
  table.add_row({"bit-identity", "sim/threaded/tcp x {8,0,2} threads", "-", "-",
                 "exact", transports_identical ? "pass" : "FAIL"});

  bench::BenchMeta meta;
  meta.transport = "in-process+tcp";
  bench::emit_table("local_optimize", table, meta);

  const bool ok =
      speedup0 >= 1.5 && speedup8 >= 3.0 && threads_identical && transports_identical;
  std::printf("%s: fused serial %.2fx, 8-thread %.2fx vs pre-PR serial; "
              "determinism %s\n",
              ok ? "PASS" : "FAIL", speedup0, speedup8,
              threads_identical && transports_identical ? "exact" : "VIOLATED");
  return ok ? 0 : 1;
}
