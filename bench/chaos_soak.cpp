// Chaos soak — the PR 10 acceptance gate (DESIGN.md §13).
//
// Spawns a 4-miner x 2-replica cluster (this binary re-execs itself with
// --miner, cluster_scaling style), installs a seeded FaultPlan at the
// DRIVER's socket boundary, and enforces the robustness contract by EXIT
// CODE so CI can gate on this binary:
//
//   * bit-identical-or-typed (always enforced): under ~5-10% injected
//     socket faults, every successful response is BIT-IDENTICAL to the
//     fault-free reference and every failure is a TYPED error — zero
//     silently-wrong reports, ever;
//   * availability (always enforced): with replicas = 2 and a mid-soak
//     SIGKILL of one miner, >= 99% of soaked requests are served;
//   * schedule determinism (always enforced): the same fault seed replays
//     the IDENTICAL injection schedule (index, kind) trace;
//   * self-healing rejoin (always enforced): the SIGKILL'd miner restarts,
//     resyncs its owned shards from live peers through the shard-snapshot
//     door (--resync), and serves BIT-IDENTICAL to its pre-kill self — and
//     a fresh router over the healed fleet matches the reference.
//
//   chaos_soak [--quick]                 driver (the default)
//   chaos_soak --miner S I R [P1,P2..]   internal: miner process, S shards,
//                                        owning index I with R replicas,
//                                        optional resync peer ports
//
// Faults are injected in the DRIVER process only: miners stay healthy, so
// every divergence the soak could observe is the transport layer's fault —
// exactly the layer PR 10 hardens. kSeed reuses cluster_scaling's tuned
// value (8 nonces -> 2/2/2/2 over 4 hash-mod shards).
#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_util.hpp"
#include "net/cluster.hpp"
#include "net/fault.hpp"
#include "net/remote.hpp"
#include "protocol/party_logic.hpp"

namespace {

using sap::data::Dataset;
using sap::rng::Engine;
namespace net = sap::net;
namespace proto = sap::proto;
namespace fault = sap::net::fault;

constexpr std::uint64_t kSeed = 90058;  // tuned: 8 nonces -> 2/2/2/2 over 4 shards
constexpr std::size_t kParties = 8;
constexpr std::size_t kMiners = 4;
constexpr std::size_t kReplicas = 2;
constexpr std::size_t kBatchRows = 16;
const char* const kFaultSpec =
    "seed=606,drop=0.02,delay=0.05,partial=0.03,truncate=0.01,corrupt=0.015,"
    "reset=0.015,delay_ms=3";
const char* const kMergeJobs[] = {"record-count", "class-histogram",
                                  "nb-train-accuracy", "knn-train-accuracy"};

struct Session {
  Dataset pool;
  std::vector<Dataset> shards;
  proto::SapOptions sap;
};

Session make_session() {
  Session s;
  const Dataset raw = sap::data::make_uci("Diabetes", kSeed);
  sap::data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  s.pool = Dataset(raw.name(), norm.transform(raw.features()), raw.labels());
  Engine shard_eng(kSeed ^ 0xBEEF);
  sap::data::PartitionOptions popts;
  s.shards = sap::data::partition(s.pool, kParties, popts, shard_eng);
  s.sap = proto::SapOptions::fast();
  s.sap.seed = kSeed;
  s.sap.compute_satisfaction = false;
  return s;
}

proto::JobParams job_params(const char* job) {
  proto::JobParams params;
  if (std::strstr(job, "train-accuracy") != nullptr) params["eval-records"] = 64.0;
  return params;
}

// ---- miner process -------------------------------------------------------

/// Child mode: one cluster member (cluster_scaling idiom — daemon plus all
/// 8 parties in-process, "DOOR <port>" then "READY" on stdout). When the
/// driver passes resync peer ports, the daemon pulls its owned shards from
/// the first live owner that is AHEAD before serving — the rejoin path.
int miner_main(std::size_t shards, std::size_t index, std::size_t replicas,
               const char* resync_ports) {
  const Session s = make_session();

  net::MinerDaemonOptions opts;
  opts.listen = {"127.0.0.1", 0};
  opts.parties = kParties;
  opts.seed = kSeed;
  opts.reactor_loops = 2;
  opts.reactor_compute_threads = 2;
  opts.shards = shards;
  opts.shard_layout = proto::ShardLayout::kHashMod;
  if (shards > 1) {
    std::set<std::size_t> owned;
    for (std::size_t j = 0; j < replicas; ++j)
      owned.insert((index + shards - j) % shards);
    opts.owned_shards.assign(owned.begin(), owned.end());
  }
  if (resync_ports != nullptr) {
    for (const char* p = resync_ports; *p != '\0';) {
      char* end = nullptr;
      const long port = std::strtol(p, &end, 10);
      if (end == p || port <= 0 || port > 65535) {
        std::fprintf(stderr, "miner: bad resync port list '%s'\n", resync_ports);
        return 2;
      }
      opts.resync_peers.push_back(
          {"127.0.0.1", static_cast<std::uint16_t>(port)});
      p = (*end == ',') ? end + 1 : end;
    }
  }
  net::MinerDaemon daemon(opts);
  std::printf("DOOR %u\n", static_cast<unsigned>(daemon.reactor_addr().port));
  std::fflush(stdout);

  auto daemon_future = std::async(std::launch::async, [&] { return daemon.run(); });
  std::promise<void> exchanged;
  std::vector<std::thread> parties;
  for (std::size_t i = 0; i < kParties; ++i) {
    parties.emplace_back([&, i] {
      net::PartyClientOptions popts;
      popts.connect = daemon.local_addr();
      popts.index = i;
      popts.parties = kParties;
      popts.sap = s.sap;
      net::PartyClient party(s.shards[i], popts);
      (void)party.run_exchange();
      if (i != 0) {
        party.finish();
        return;
      }
      exchanged.set_value();
      for (;;) std::this_thread::sleep_for(std::chrono::hours(1));
    });
  }
  exchanged.get_future().wait();
  // Serving (and the resync that precedes it) finishes a hair after the
  // exchange; bounded probe (lint R7) before announcing READY.
  bool door_up = false;
  for (int attempt = 0; attempt < 2000 && !door_up; ++attempt) {
    if (daemon.serving()) door_up = true;
    else std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (!door_up) {
    std::fprintf(stderr, "miner: own serving door never came up\n");
    return 1;
  }
  std::printf("READY\n");
  std::fflush(stdout);
  for (auto& t : parties) t.join();  // never returns
  return 0;
}

// ---- driver: process management ------------------------------------------

struct Miner {
  pid_t pid = -1;
  FILE* out = nullptr;
  net::SocketAddr door;
};

Miner spawn_miner(const char* self, std::size_t index, const std::string& resync) {
  int fds[2];
  if (::pipe(fds) != 0) {
    std::perror("pipe");
    std::exit(2);
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(2);
  }
  if (pid == 0) {
    ::dup2(fds[1], 1);
    ::close(fds[0]);
    ::close(fds[1]);
    char s_arg[16], i_arg[16], r_arg[16];
    std::snprintf(s_arg, sizeof s_arg, "%zu", kMiners);
    std::snprintf(i_arg, sizeof i_arg, "%zu", index);
    std::snprintf(r_arg, sizeof r_arg, "%zu", kReplicas);
    if (resync.empty())
      ::execl(self, self, "--miner", s_arg, i_arg, r_arg, (char*)nullptr);
    else
      ::execl(self, self, "--miner", s_arg, i_arg, r_arg, resync.c_str(),
              (char*)nullptr);
    std::perror("execl");
    ::_exit(127);
  }
  ::close(fds[1]);
  Miner m;
  m.pid = pid;
  m.out = ::fdopen(fds[0], "r");
  unsigned port = 0;
  if (!m.out || std::fscanf(m.out, "DOOR %u\n", &port) != 1 || port == 0) {
    std::fprintf(stderr, "FAIL: miner %zu did not report a door\n", index);
    std::exit(1);
  }
  m.door = {"127.0.0.1", static_cast<std::uint16_t>(port)};
  return m;
}

void await_ready(Miner& m) {
  char line[64];
  if (std::fscanf(m.out, "%15s", line) != 1 || std::strcmp(line, "READY") != 0) {
    std::fprintf(stderr, "FAIL: miner on port %u never became READY\n",
                 static_cast<unsigned>(m.door.port));
    std::exit(1);
  }
}

void kill_miner(Miner& m) {
  if (m.pid > 0) {
    ::kill(m.pid, SIGKILL);
    int status = 0;
    ::waitpid(m.pid, &status, 0);
    m.pid = -1;
  }
  if (m.out) {
    std::fclose(m.out);
    m.out = nullptr;
  }
}

net::ShardRouterOptions router_options(const std::vector<Miner>& fleet) {
  net::ShardRouterOptions ropts;
  for (const auto& m : fleet) ropts.miners.push_back(m.door);
  ropts.replicas = kReplicas;
  ropts.layout = proto::ShardLayout::kHashMod;
  ropts.seed = kSeed;
  ropts.parties = kParties;
  // The soak's healing budget: short per-attempt timeouts so a dropped
  // frame costs half a second, a retry budget deep enough that exhaustion
  // is a tail event, and a deterministic jitter seed.
  ropts.client.timeout_ms = 500;
  ropts.client.retry_attempts = 8;
  ropts.client.retry_backoff_ms = 1;
  ropts.client.retry_backoff_cap_ms = 16;
  ropts.client.retry_deadline_ms = 30'000;
  ropts.breaker_cooldown_ms = 100;  // a tripped breaker must not eat the soak
  return ropts;
}

std::vector<std::vector<double>> make_contribution_wires(const Session& s) {
  const auto seeds = proto::logic::derive_session_seeds(kSeed, kParties);
  std::vector<std::vector<double>> wires;
  for (std::size_t i = 0; i < kParties; ++i) {
    Engine eng = seeds.provider_eng[i];
    const auto local = proto::logic::optimize_local(s.shards[i].features_T(),
                                                    s.shards[i].dims(), s.sap, eng);
    const Dataset batch = s.pool.slice(i * kBatchRows, (i + 1) * kBatchRows);
    const auto y = local.g.apply(batch.features_T(), eng);
    wires.push_back(proto::encode_contribution(local.nonce, y, batch.labels()));
  }
  return wires;
}

/// Cluster-merged reports for every merge job through `router`.
std::vector<std::vector<double>> merged_reports(net::ShardRouter& router) {
  std::vector<std::vector<double>> out;
  for (const char* job : kMergeJobs)
    out.push_back(router.mine_named(job, job_params(job)).values);
  return out;
}

/// One miner's DIRECT door reports (its owned shards only) — the pre-kill
/// fingerprint its resynced replacement must reproduce bit for bit.
std::vector<std::vector<double>> direct_reports(const net::SocketAddr& door) {
  net::ServeClient::Options copts;
  copts.retry_attempts = 4;
  net::ServeClient client(door, kSeed, kParties, copts);
  std::vector<std::vector<double>> out;
  for (const char* job : kMergeJobs) {
    auto resp = client.mine_named(job, job_params(job));
    resp.values.push_back(static_cast<double>(resp.pool_epoch));  // epoch rides along
    out.push_back(std::move(resp.values));
  }
  client.bye();
  return out;
}

// ---- driver: phases ------------------------------------------------------

/// Phase S — same seed, same schedule: draw a fixed single-threaded
/// decision sequence twice and require the identical (index, kind) trace.
bool schedule_deterministic() {
  const auto plan = fault::FaultPlan::parse(kFaultSpec);
  const auto draw = [&plan] {
    fault::install(plan);
    for (int i = 0; i < 1500; ++i) (void)fault::next_write_fault(256);
    for (int i = 0; i < 400; ++i) (void)fault::next_read_fault(256);
    for (int i = 0; i < 100; ++i) (void)fault::next_connect_fault();
    auto trace = fault::trace();
    fault::uninstall();
    return trace;
  };
  const auto trace_a = draw();
  const auto trace_b = draw();
  if (trace_a.empty() || trace_a != trace_b) {
    std::fprintf(stderr, "FAIL: same fault seed did not replay the same schedule "
                         "(%zu vs %zu injections)\n",
                 trace_a.size(), trace_b.size());
    return false;
  }
  std::printf("-- schedule: seed %llu replays %zu injections identically\n",
              static_cast<unsigned long long>(plan.seed), trace_a.size());
  return true;
}

struct SoakResult {
  std::size_t served = 0;
  std::size_t typed = 0;
  std::size_t wrong = 0;
  std::size_t failovers = 0;
  std::size_t retries = 0;
  std::uint64_t injected = 0;
};

/// Phase B — the chaos soak: `requests` merge jobs through the faulted
/// driver transport, one SIGKILL a third of the way in. Successful
/// responses must match `reference` bit for bit; failures must be typed.
SoakResult run_soak(net::ShardRouter& router, std::vector<Miner>& fleet,
                    const std::vector<std::vector<double>>& reference,
                    std::size_t requests) {
  SoakResult r;
  fault::install(fault::FaultPlan::parse(kFaultSpec));
  for (std::size_t i = 0; i < requests; ++i) {
    if (i == requests / 3) kill_miner(fleet[0]);  // mid-soak SIGKILL, faults live
    const std::size_t j = i % std::size(kMergeJobs);
    try {
      const auto resp = router.mine_named(kMergeJobs[j], job_params(kMergeJobs[j]));
      if (resp.values == reference[j]) {
        ++r.served;
      } else {
        ++r.wrong;
        std::fprintf(stderr, "FAIL: request %zu (%s) served a DIVERGENT report "
                             "under faults\n",
                     i, kMergeJobs[j]);
      }
    } catch (const net::ServeError&) {
      ++r.typed;  // typed refusal: the contract's allowed failure mode
    } catch (const sap::Error&) {
      ++r.typed;  // typed transport error after an exhausted budget
    }
  }
  r.injected = fault::stats().total_injected();
  fault::uninstall();
  r.failovers = router.failovers();
  r.retries = router.client_retries();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 5 && std::strcmp(argv[1], "--miner") == 0)
    return miner_main(static_cast<std::size_t>(std::atoi(argv[2])),
                      static_cast<std::size_t>(std::atoi(argv[3])),
                      static_cast<std::size_t>(std::atoi(argv[4])),
                      argc >= 6 ? argv[5] : nullptr);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: chaos_soak [--quick]\n");
      return 2;
    }
  }
  ::signal(SIGPIPE, SIG_IGN);

  const std::size_t soak_requests = quick ? 100 : 300;
  const std::size_t batches_per_party = quick ? 2 : 4;

  bool ok = schedule_deterministic();

  // ---- phase A: fleet up, ingest, fault-free reference -------------------
  std::printf("-- fleet: %zu miners x %zu replicas\n", kMiners, kReplicas);
  const Session session = make_session();
  const auto wires = make_contribution_wires(session);
  std::vector<Miner> fleet;
  for (std::size_t i = 0; i < kMiners; ++i)
    fleet.push_back(spawn_miner(argv[0], i, ""));
  for (auto& m : fleet) await_ready(m);

  const auto ropts = router_options(fleet);
  net::ShardRouter router(ropts);
  for (std::size_t b = 0; b < batches_per_party; ++b)
    for (std::size_t i = 0; i < kParties; ++i)
      (void)router.contribute_wire(wires[i]);
  const auto reference = merged_reports(router);
  const auto fingerprint = direct_reports(fleet[0].door);  // pre-kill miner 0
  std::printf("-- reference: %zu jobs, pool %zu records\n", std::size(kMergeJobs),
              static_cast<std::size_t>(reference[0][0]));

  // ---- phase B: chaos soak with a mid-stream SIGKILL ---------------------
  std::printf("-- soak: %zu requests under %s\n", soak_requests, kFaultSpec);
  const SoakResult soak = run_soak(router, fleet, reference, soak_requests);
  const double availability =
      static_cast<double>(soak.served) / static_cast<double>(soak_requests);
  std::printf("-- soak: served %zu, typed %zu, wrong %zu, availability %.2f%%, "
              "failovers %zu, retries %zu, injected %llu\n",
              soak.served, soak.typed, soak.wrong, availability * 100.0,
              soak.failovers, soak.retries,
              static_cast<unsigned long long>(soak.injected));

  // ---- phase C: the killed miner rejoins via --resync --------------------
  std::string peers;
  for (std::size_t i = 1; i < kMiners; ++i) {
    if (!peers.empty()) peers += ',';
    peers += std::to_string(static_cast<unsigned>(fleet[i].door.port));
  }
  std::printf("-- rejoin: restarting miner 0 with --resync %s\n", peers.c_str());
  fleet[0] = spawn_miner(argv[0], 0, peers);
  await_ready(fleet[0]);
  const auto healed_fingerprint = direct_reports(fleet[0].door);
  bool rejoined = healed_fingerprint == fingerprint;
  if (!rejoined)
    std::fprintf(stderr, "FAIL: the rejoined miner's direct reports diverge from "
                         "its pre-kill self\n");
  net::ShardRouter healed_router(router_options(fleet));
  const auto healed_reports = merged_reports(healed_router);
  if (healed_reports != reference) {
    std::fprintf(stderr, "FAIL: the healed fleet's merged reports diverge from "
                         "the reference\n");
    rejoined = false;
  }
  if (rejoined) std::printf("-- rejoin: miner 0 resynced and serves bit-identical\n");

  sap::Table table({"phase", "requests", "served", "typed", "wrong",
                    "availability_pct", "failovers", "retries", "injected"});
  table.add_row({"soak", sap::Table::num(static_cast<double>(soak_requests), 0),
                 sap::Table::num(static_cast<double>(soak.served), 0),
                 sap::Table::num(static_cast<double>(soak.typed), 0),
                 sap::Table::num(static_cast<double>(soak.wrong), 0),
                 sap::Table::num(availability * 100.0, 2),
                 sap::Table::num(static_cast<double>(soak.failovers), 0),
                 sap::Table::num(static_cast<double>(soak.retries), 0),
                 sap::Table::num(static_cast<double>(soak.injected), 0)});
  table.add_row({"rejoin", sap::Table::num(static_cast<double>(std::size(kMergeJobs)), 0),
                 sap::Table::num(static_cast<double>(std::size(kMergeJobs)), 0),
                 sap::Table::num(0, 0), sap::Table::num(rejoined ? 0 : 1, 0), "-",
                 "-", "-", "-"});
  sap::bench::BenchMeta meta;
  meta.transport = "cluster-tcp-chaos";
  meta.shards = kMiners;
  meta.replicas = kReplicas;
  sap::bench::emit_table("chaos_soak", table, meta);

  for (auto& m : fleet) kill_miner(m);

  // ---- enforced floors ---------------------------------------------------
  if (soak.wrong != 0) {
    std::fprintf(stderr, "FAIL: %zu responses were silently wrong under faults\n",
                 soak.wrong);
    ok = false;
  }
  if (availability < 0.99) {
    std::fprintf(stderr, "FAIL: availability %.2f%% < 99%% with replicas = %zu\n",
                 availability * 100.0, kReplicas);
    ok = false;
  }
  if (soak.failovers == 0) {
    std::fprintf(stderr, "FAIL: the SIGKILL never exercised a failover\n");
    ok = false;
  }
  if (soak.injected == 0) {
    std::fprintf(stderr, "FAIL: the fault plan injected nothing — the soak "
                         "tested a healthy network\n");
    ok = false;
  }
  if (!rejoined) ok = false;
  if (ok) std::printf("chaos_soak: all enforced floors passed\n");
  return ok ? 0 : 1;
}
