// Ablation Abl-7: measured satisfaction levels s_i in live protocol runs.
//
// Figure 4's theory asks: how many parties are needed so a desired
// satisfaction s0 is affordable? This bench measures the other side —
// what satisfaction the unified target space actually delivers: for each
// dataset and party count, the mean and min of s_i = rho^G_i / rho_i across
// parties, and the fraction of parties meeting s0 in {0.90, 0.95}.
//
// Expectation: s_i concentrates near (often above) 0.9. A random target
// space is "as good as" a locally optimized one for most parties because
// optimized rho distributions are tight near the bound (Figure 2), so the
// unified space sacrifices little — the paper's core trade-off argument.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"

int main() {
  using namespace sap;
  const std::vector<std::string> datasets{"Diabetes", "Votes", "Wine"};

  std::printf("== Ablation: measured satisfaction s_i = rho^G_i / rho_i in SAP runs ==\n\n");

  Stopwatch sw;
  Table table({"dataset", "k", "mean s_i", "min s_i", ">=0.90", ">=0.95"});
  for (const auto& dataset : datasets) {
    for (const std::size_t k : {4, 7, 10}) {
      const data::Dataset pool = bench::normalized_uci(dataset, 13);
      rng::Engine eng(500 + k);
      data::PartitionOptions popts;
      auto parts = data::partition(pool, k, popts, eng);

      auto opts = bench::bench_sap_options();
      opts.compute_satisfaction = true;
      opts.bound_runs = 2;
      opts.seed = 600 + k;
      proto::SapSession session(std::move(parts), opts);
      const auto result = session.run();

      double mean_s = 0.0, min_s = 1e300;
      std::size_t ge90 = 0, ge95 = 0;
      for (const auto& p : result.parties) {
        mean_s += p.satisfaction;
        min_s = std::min(min_s, p.satisfaction);
        ge90 += (p.satisfaction >= 0.90);
        ge95 += (p.satisfaction >= 0.95);
      }
      mean_s /= static_cast<double>(result.parties.size());
      table.add_row({dataset, std::to_string(k), Table::num(mean_s), Table::num(min_s),
                     Table::num(static_cast<double>(ge90) / static_cast<double>(k), 2),
                     Table::num(static_cast<double>(ge95) / static_cast<double>(k), 2)});
    }
  }
  bench::emit_table("satisfaction", table);
  std::printf("\nexpected: mean s_i in the 0.75-0.95 band across datasets and k — the\n"
              "random unified space costs some local privacy (s_i < 1), but eq. (2)'s\n"
              "collaboration term also shrinks by 1/(k-1), which is the trade the\n"
              "protocol sells. Figure 4 then answers how large k must be for a\n"
              "desired s0 given these rates.  elapsed=%.1fs\n",
              sw.seconds());
  return 0;
}
