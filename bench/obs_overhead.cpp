// obs_overhead — the cost of measurement, measured (DESIGN.md §12).
//
// One MinerDaemon serves through its epoll reactor door while
// obs::set_enabled toggles the global metrics switch between measurement
// legs. Two request shapes bracket the serving spectrum:
//
//   * mining — the throughput_mining shape: a cached trainable job
//     (nb-train-accuracy) served synchronously, engine cost dominates and
//     every request crosses the instrumented serve path (serve/fit
//     histograms, trace ring push);
//   * socket — the socket_throughput shape: pipelined record-count frames
//     over a small connection set, front-door cost (scan, decode, flush)
//     dominates and per-request obs work is the largest relative slice.
//
// Enforced by exit code, not prose:
//   * overhead bar: metrics-on throughput must be within 3% of metrics-off
//     on BOTH shapes (best-of-T trials per position; one re-measure round
//     filters scheduler flukes like socket_throughput's floor check);
//   * bit-identity: the FNV-1a digest of every served value must be
//     IDENTICAL with metrics on and off, and equal to the direct
//     MiningEngine reference — observability is pure measurement, it never
//     perturbs a job report.
//
//   obs_overhead [--quick] [--requests N]
#include <poll.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "net/remote.hpp"
#include "protocol/party_logic.hpp"

namespace {

using sap::Table;
using sap::data::Dataset;
namespace net = sap::net;
namespace obs = sap::obs;
namespace proto = sap::proto;

constexpr const char* kSocketJob = "record-count";
constexpr const char* kMiningJob = "nb-train-accuracy";
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv_values(std::uint64_t h, std::span<const double> values) {
  for (const double v : values) {
    const auto bits = std::bit_cast<std::uint64_t>(v);
    for (std::size_t i = 0; i < sizeof bits; ++i)
      h = (h ^ ((bits >> (8 * i)) & 0xFF)) * kFnvPrime;
  }
  return h;
}

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One measured leg: requests served, elapsed, and the served-value digest
/// (the digest is position-independent by the bit-identity contract).
struct Leg {
  std::size_t completed = 0;
  std::int64_t elapsed_us = 0;
  std::uint64_t digest = kFnvOffset;
  [[nodiscard]] double req_per_sec() const {
    return elapsed_us > 0
               ? static_cast<double>(completed) * 1e6 / static_cast<double>(elapsed_us)
               : 0.0;
  }
};

/// mining shape: synchronous cached-job round trips on one client. The
/// latencies vector collects per-request micros for the percentile columns
/// (raw timestamps, NOT obs::Histogram::record — the off-position leg must
/// not depend on the switch it is measuring).
Leg run_mining_leg(net::ServeClient& client, std::size_t requests,
                   std::vector<double>& latencies) {
  Leg leg;
  const std::int64_t t0 = now_us();
  for (std::size_t i = 0; i < requests; ++i) {
    const std::int64_t sent = now_us();
    const auto resp = client.mine_named(kMiningJob);
    latencies.push_back(static_cast<double>(now_us() - sent));
    leg.digest = fnv_values(leg.digest, resp.values);
    ++leg.completed;
  }
  leg.elapsed_us = now_us() - t0;
  return leg;
}

/// socket shape: raw pipelined frames, `conns` connections each keeping one
/// request outstanding (the socket_throughput driver, shrunk to in-process
/// size — the fd population here is tiny).
struct SocketRig {
  std::vector<net::TcpSocket> socks;
  std::vector<net::FrameReader> readers;
  std::vector<proto::PartyId> ids;
  std::vector<std::vector<std::uint8_t>> req_bytes;
  std::uint64_t secret = 0;
  proto::PartyId miner = 0;

  SocketRig(const net::SocketAddr& addr, std::uint64_t seed, std::size_t parties,
            std::size_t conns) {
    secret = proto::logic::derive_session_seeds(seed, parties).session_secret;
    miner = static_cast<proto::PartyId>(parties);
    std::vector<std::uint8_t> hello_bytes;
    {
      net::Frame hello;
      hello.type = net::FrameType::kHello;
      hello.to = miner;
      hello.body = net::u32_body(net::kClaimAnyParty);
      encode_frame(hello, hello_bytes);
    }
    std::vector<std::uint8_t> rbuf(64u << 10);
    for (std::size_t c = 0; c < conns; ++c) {
      socks.push_back(net::TcpSocket::connect(addr, 15'000));
      readers.emplace_back(net::kDefaultMaxBody);
      socks.back().write_all(hello_bytes.data(), hello_bytes.size(), 15'000);
    }
    ids.assign(conns, 0);
    for (std::size_t c = 0; c < conns; ++c) {
      net::Frame welcome;
      if (!read_frame(c, welcome, rbuf) || welcome.type != net::FrameType::kWelcome) {
        std::fprintf(stderr, "FAIL: obs_overhead conn %zu not welcomed\n", c);
        std::exit(1);
      }
      ids[c] = net::body_u32(welcome.body);
    }
    const std::vector<double> payload = proto::encode_mining_request(kSocketJob, {});
    req_bytes.resize(conns);
    for (std::size_t c = 0; c < conns; ++c) {
      net::Frame req;
      req.type = net::FrameType::kData;
      req.payload_kind = static_cast<std::uint8_t>(proto::PayloadKind::kMiningRequest);
      req.from = ids[c];
      req.to = miner;
      req.body = net::envelope_body(proto::EncryptedEnvelope(
          payload, proto::detail::derive_link_key(secret, ids[c], miner)));
      encode_frame(req, req_bytes[c]);
    }
  }

  bool read_frame(std::size_t c, net::Frame& out, std::vector<std::uint8_t>& rbuf) {
    const std::int64_t deadline = now_us() + 15'000'000;
    while (!readers[c].next(out)) {
      if (now_us() > deadline) return false;
      bool closed = false;
      const std::size_t got = socks[c].read_some(rbuf.data(), rbuf.size(), 1'000, closed);
      if (got > 0) readers[c].feed(rbuf.data(), got);
      if (closed && got == 0) return false;
    }
    return true;
  }

  Leg run(std::size_t requests, std::vector<double>& latencies) {
    const std::size_t conns = socks.size();
    std::vector<std::uint8_t> rbuf(64u << 10);
    std::vector<pollfd> pfds(conns);
    std::vector<std::int64_t> sent_at(conns, 0);
    for (std::size_t c = 0; c < conns; ++c) pfds[c] = {socks[c].fd(), POLLIN, 0};
    Leg leg;
    std::size_t sent = 0;
    const std::int64_t t0 = now_us();
    for (std::size_t c = 0; c < conns && sent < requests; ++c) {
      socks[c].write_all(req_bytes[c].data(), req_bytes[c].size(), 15'000);
      sent_at[c] = now_us();
      ++sent;
    }
    while (leg.completed < requests) {
      const int rc = ::poll(pfds.data(), conns, 15'000);
      if (rc <= 0) {
        std::fprintf(stderr, "FAIL: obs_overhead stalled at %zu/%zu responses\n",
                     leg.completed, requests);
        std::exit(1);
      }
      for (std::size_t c = 0; c < conns; ++c) {
        if ((pfds[c].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        bool closed = false;
        for (;;) {
          const std::size_t got = socks[c].read_some(rbuf.data(), rbuf.size(), 0, closed);
          if (got == 0) break;
          readers[c].feed(rbuf.data(), got);
        }
        net::FrameView fv;
        while (readers[c].next_view(fv)) {
          latencies.push_back(static_cast<double>(now_us() - sent_at[c]));
          ++leg.completed;
          if (fv.type != net::FrameType::kData ||
              fv.payload_kind !=
                  static_cast<std::uint8_t>(proto::PayloadKind::kMiningResponse)) {
            std::fprintf(stderr, "FAIL: obs_overhead unexpected frame on conn %zu\n", c);
            std::exit(1);
          }
          const std::vector<double> wire = net::body_envelope(fv.body).open(
              proto::detail::derive_link_key(secret, miner, ids[c]));
          leg.digest = fnv_values(leg.digest, wire);
          if (sent < requests) {
            socks[c].write_all(req_bytes[c].data(), req_bytes[c].size(), 15'000);
            sent_at[c] = now_us();
            ++sent;
          } else {
            pfds[c].fd = -1;
          }
        }
        if (closed && leg.completed < requests) {
          std::fprintf(stderr, "FAIL: obs_overhead conn %zu closed mid-run\n", c);
          std::exit(1);
        }
      }
    }
    leg.elapsed_us = now_us() - t0;
    return leg;
  }
};

/// Best-of-T, alternating positions each trial so drift (thermal, page
/// cache) hits both equally. Returns {best on, best off} and verifies every
/// leg's digest matches `expected`.
struct Measured {
  Leg on, off;
  std::vector<double> lat_on, lat_off;
  bool identical = true;
};

template <typename RunLeg>
Measured measure(std::size_t trials, std::uint64_t expected, RunLeg&& run_leg) {
  Measured m;
  for (std::size_t t = 0; t < trials; ++t) {
    for (const bool on : {true, false}) {
      obs::set_enabled(on);
      std::vector<double> lat;
      const Leg leg = run_leg(lat);
      obs::set_enabled(true);
      if (leg.digest != expected) m.identical = false;
      Leg& best = on ? m.on : m.off;
      if (leg.req_per_sec() > best.req_per_sec()) {
        best = leg;
        (on ? m.lat_on : m.lat_off) = std::move(lat);
      }
    }
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t socket_requests = 4000;
  std::size_t mining_requests = 400;
  std::size_t trials = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      // Legs must run long enough for best-of-T to converge below the bar's
      // granularity — sub-20ms legs measure scheduler noise, not overhead.
      socket_requests = 3000;
      mining_requests = 300;
      trials = 4;
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      socket_requests = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: obs_overhead [--quick] [--requests N]\n");
      return 2;
    }
  }
  const std::size_t parties = 3;
  const std::uint64_t seed = 20260808;
  const std::size_t conns = 8;

  // Same rig as socket_throughput: exchange once, hold the party links open,
  // serve everything through the reactor door.
  const Dataset base = sap::bench::normalized_uci("Diabetes", seed).slice(0, 210);
  sap::rng::Engine part_eng(seed ^ 0x50C4);
  auto shards = sap::data::partition(base, parties, {}, part_eng);
  auto sap_opts = sap::bench::bench_sap_options();
  sap_opts.seed = seed;

  net::MinerDaemonOptions daemon_opts;
  daemon_opts.listen = {"127.0.0.1", 0};
  daemon_opts.parties = parties;
  daemon_opts.seed = seed;
  daemon_opts.reactor_loops = 2;
  daemon_opts.reactor_compute_threads = 1;
  daemon_opts.reactor_idle_timeout_ms = 300'000;
  net::MinerDaemon daemon(daemon_opts);
  const auto hub_addr = daemon.local_addr();
  auto daemon_future = std::async(std::launch::async, [&] { return daemon.run(); });

  std::promise<void> serving_promise;
  auto serving = serving_promise.get_future();
  std::promise<void> release_promise;
  std::shared_future<void> release(release_promise.get_future());
  std::vector<std::thread> party_threads;
  for (std::size_t i = 0; i < parties; ++i) {
    party_threads.emplace_back([&, i] {
      net::PartyClientOptions popts;
      popts.connect = hub_addr;
      popts.index = i;
      popts.parties = parties;
      popts.sap = sap_opts;
      net::PartyClient client(shards[i], popts);
      (void)client.run_exchange();
      if (i == 0) {
        (void)client.mine_named(kSocketJob);
        serving_promise.set_value();
      }
      release.wait();
      client.finish();
    });
  }
  serving.wait();

  // Direct-engine reference digests — what every leg must reproduce.
  const std::vector<double> direct_socket_wire = proto::encode_mining_response([&] {
    const auto resp = daemon.engine().run({kSocketJob, {}});
    proto::WireMiningResponse wire;
    wire.values = resp.values;
    wire.model_cached = resp.model_cached;
    wire.model_incremental = resp.model_incremental;
    wire.pool_epoch = resp.pool_epoch;
    return wire;
  }());
  const auto expect_socket = [&](std::size_t n) {
    std::uint64_t h = kFnvOffset;
    for (std::size_t i = 0; i < n; ++i) h = fnv_values(h, direct_socket_wire);
    return h;
  };
  const auto expect_mining = [&](std::size_t n) {
    // mine_named returns decoded values; hash the decoded report n times.
    std::uint64_t h = kFnvOffset;
    const auto resp = daemon.engine().run({kMiningJob, {}});
    for (std::size_t i = 0; i < n; ++i) h = fnv_values(h, resp.values);
    return h;
  };

  net::ServeClient mining_client(daemon.reactor_addr(), seed, parties);
  (void)mining_client.mine_named(kMiningJob);  // warm the model cache
  SocketRig rig(daemon.reactor_addr(), seed, parties, conns);
  {
    std::vector<double> warm;
    (void)rig.run(conns, warm);  // one pipelined round proves the path
  }

  auto run_measurements = [&] {
    Measured mining = measure(trials, expect_mining(mining_requests),
                              [&](std::vector<double>& lat) {
                                lat.reserve(mining_requests);
                                return run_mining_leg(mining_client, mining_requests, lat);
                              });
    Measured socket = measure(trials, expect_socket(socket_requests),
                              [&](std::vector<double>& lat) {
                                lat.reserve(socket_requests);
                                return rig.run(socket_requests, lat);
                              });
    return std::pair{mining, socket};
  };

  auto [mining, socket] = run_measurements();
  const auto overhead_pct = [](const Measured& m) {
    return 100.0 * (1.0 - m.on.req_per_sec() / m.off.req_per_sec());
  };
  constexpr double kBarPct = 3.0;
  // One full re-measure round filters scheduler flukes (the same policy as
  // socket_throughput's scaling-floor check); each position keeps its best.
  if (overhead_pct(mining) > kBarPct || overhead_pct(socket) > kBarPct) {
    auto [m2, s2] = run_measurements();
    const auto keep_best = [](Measured& into, const Measured& redo) {
      into.identical = into.identical && redo.identical;
      if (redo.on.req_per_sec() > into.on.req_per_sec()) {
        into.on = redo.on;
        into.lat_on = redo.lat_on;
      }
      if (redo.off.req_per_sec() > into.off.req_per_sec()) {
        into.off = redo.off;
        into.lat_off = redo.lat_off;
      }
    };
    keep_best(mining, m2);
    keep_best(socket, s2);
  }

  release_promise.set_value();
  for (auto& t : party_threads) t.join();
  (void)daemon_future.get();

  Table table({"shape", "metrics", "trials", "requests", "req/s", "p50 us", "p99 us",
               "overhead %", "identical"});
  const auto add = [&](const char* shape, const char* metrics, const Leg& leg,
                       const std::vector<double>& lat, double ovh, bool identical) {
    const auto s = sap::bench::summarize_latency(lat);
    table.add_row({shape, metrics, std::to_string(trials), std::to_string(leg.completed),
                   Table::num(leg.req_per_sec(), 1), Table::num(s.p50, 1),
                   Table::num(s.p99, 1), Table::num(ovh, 2), identical ? "yes" : "NO"});
  };
  add("mining", "on", mining.on, mining.lat_on, overhead_pct(mining), mining.identical);
  add("mining", "off", mining.off, mining.lat_off, overhead_pct(mining), mining.identical);
  add("socket", "on", socket.on, socket.lat_on, overhead_pct(socket), socket.identical);
  add("socket", "off", socket.off, socket.lat_off, overhead_pct(socket), socket.identical);
  sap::bench::emit_table("obs_overhead", table,
                         {.transport = "epoll-reactor", .threads = 2});

  bool ok = true;
  for (const auto& [name, m] : {std::pair<const char*, const Measured&>{"mining", mining},
                                {"socket", socket}}) {
    if (!m.identical) {
      std::fprintf(stderr, "FAIL: %s shape served values differ between metrics "
                           "positions or from the direct engine\n",
                   name);
      ok = false;
    }
    if (overhead_pct(m) > kBarPct) {
      std::fprintf(stderr, "FAIL: %s shape metrics overhead %.2f%% exceeds the %.0f%% bar "
                           "(on %.1f req/s vs off %.1f req/s)\n",
                   name, overhead_pct(m), kBarPct, m.on.req_per_sec(),
                   m.off.req_per_sec());
      ok = false;
    }
  }
  std::printf("\nmetrics overhead: mining %.2f%%, socket %.2f%% (bar %.0f%%); "
              "served values bit-identical on/off: %s\n",
              overhead_pct(mining), overhead_pct(socket), kBarPct,
              mining.identical && socket.identical ? "yes" : "NO");
  return ok ? 0 : 1;
}
