// Streaming-ingest bench: incremental refit vs full retrain per appended
// batch, plus the live-pool determinism invariant.
//
// Part 1 (timing): one large pool, a stream of appended batches. Two
// engines see the identical mutation sequence; the `incremental` engine
// serves each post-append request by extending its cached model via
// Classifier::partial_fit, the `retrain` engine (cache off) refits from
// scratch. Reports per batch and per job (NaiveBayes + Knn — the two
// incremental-capable models) and asserts the acceptance bar:
//
//   median incremental refit >= 3x faster than full retrain (the
//   MiningResponse::fit_millis component — serving cost is identical on
//   both paths by construction), for BOTH jobs, and incremental reports
//   within the DESIGN.md §6 equivalence bar of the full-retrain reports
//   (bit-equal for Knn, <= 1e-12 for NaiveBayes).
//
// Part 2 (determinism): a full protocol scenario — exchange, then
// interleaved mining batches and Contribute-phase ingests — executed over
// {simulated, threaded} transports x {0, 2, 8} engine threads. Every
// configuration must produce bit-identical reports and a bit-identical
// final pool (pool mutations are epoch-ordered regardless of scheduling).
//
// Output: aligned table on stdout + BENCH_streaming_ingest.json.
// Exit code 1 when any bar fails.
//
// Usage: streaming_ingest [--quick] [--rows N] [--batches B]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "data/partition.hpp"
#include "protocol/mining_engine.hpp"
#include "protocol/session.hpp"

namespace {

using sap::Table;
using sap::data::Dataset;
namespace proto = sap::proto;

/// Large normalized pool for the timing comparison (synthetic, so the size
/// scales freely) split into an initial pool plus appended batches.
Dataset timing_pool(std::size_t rows) {
  sap::data::SyntheticSpec spec;
  spec.name = "StreamPool";
  spec.rows = rows;
  spec.dims = 16;
  spec.classes = 3;
  spec.class_sep = 1.2;
  spec.corr_rank = 3;
  const Dataset raw = sap::data::make_synthetic(spec, /*seed=*/5);
  sap::data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  return {raw.name(), norm.transform(raw.features()), raw.labels()};
}

struct TimingOutcome {
  bool ok = true;
  Table table{{"batch", "job", "retrain ms", "incremental ms", "speedup",
               "report delta"}};
  std::vector<double> nb_speedups, knn_speedups;
};

TimingOutcome run_timing(std::size_t rows, std::size_t batches,
                         std::size_t batch_records) {
  const Dataset all = timing_pool(rows + batches * batch_records);
  const Dataset base = all.slice(0, rows);

  const std::vector<proto::MiningRequest> jobs = {
      {"nb-train-accuracy", {{"eval-records", 64.0}}},
      {"knn-train-accuracy", {{"k", 5.0}, {"eval-records", 64.0}}},
  };

  proto::MiningEngine incremental({.threads = 0,
                                   .cache_models = true,
                                   .shards = 1,
                                   .layout = proto::ShardLayout::kHashMod,
                                   .owned = {}});
  proto::MiningEngine retrain({.threads = 0,
                               .cache_models = false,
                               .shards = 1,
                               .layout = proto::ShardLayout::kHashMod,
                               .owned = {}});
  incremental.set_pool(base);
  retrain.set_pool(base);
  // Warm the incremental engine's cache: the first fit is necessarily full.
  for (const auto& job : jobs) (void)incremental.run(job);

  TimingOutcome out;
  for (std::size_t b = 0; b < batches; ++b) {
    const std::size_t begin = rows + b * batch_records;
    const Dataset batch = all.slice(begin, begin + batch_records);
    incremental.append_records(batch);
    retrain.append_records(batch);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const auto slow = retrain.run(jobs[j]);
      const auto fast = incremental.run(jobs[j]);
      if (!fast.model_incremental) {
        std::fprintf(stderr, "FAIL: batch %zu job %s did not refit incrementally\n", b,
                     jobs[j].job.c_str());
        out.ok = false;
      }
      // Equivalence bar (DESIGN.md §6): Knn exact, NaiveBayes within 1e-12.
      const double delta = std::abs(fast.values[0] - slow.values[0]);
      const double bar = (jobs[j].job == "knn-train-accuracy") ? 0.0 : 1e-12;
      if (delta > bar) {
        std::fprintf(stderr,
                     "FAIL: batch %zu job %s incremental report off by %.3e (bar %.0e)\n",
                     b, jobs[j].job.c_str(), delta, bar);
        out.ok = false;
      }
      const double speedup = slow.fit_millis / fast.fit_millis;
      (j == 0 ? out.nb_speedups : out.knn_speedups).push_back(speedup);
      out.table.add_row({std::to_string(b), jobs[j].job, Table::num(slow.fit_millis, 3),
                         Table::num(fast.fit_millis, 3), Table::num(speedup, 1),
                         Table::num(delta, 1)});
    }
  }
  return out;
}

// ---- determinism across transports and thread counts ----------------------

struct ScenarioResult {
  std::vector<std::vector<double>> reports;
  sap::linalg::Matrix pool_features;
  std::vector<int> pool_labels;
};

/// Exchange + interleaved serving/ingest, fully determined by (transport,
/// threads). Any two configurations must agree bit for bit.
ScenarioResult run_scenario(proto::TransportKind transport, std::size_t threads) {
  const Dataset pool = sap::bench::normalized_uci("Iris", /*seed=*/31);
  const Dataset initial = pool.slice(0, 100);
  const Dataset stream = pool.slice(100, 150);

  sap::rng::Engine eng(31 ^ 0xBEEF);
  sap::data::PartitionOptions popts;
  auto shards = sap::data::partition(initial, 4, popts, eng);

  auto opts = proto::SapOptions::fast();
  opts.seed = 31;
  opts.compute_satisfaction = false;
  opts.transport = transport;
  opts.mining_threads = threads;
  proto::SapSession session(std::move(shards), opts);
  auto& engine = session.engine();

  const std::vector<proto::MiningRequest> load = {
      {"nb-train-accuracy", {{"eval-records", 32.0}}},
      {"knn-train-accuracy", {{"k", 3.0}, {"eval-records", 32.0}}},
      {"record-count", {}},
      {"class-histogram", {}},
      {"perceptron-train-accuracy", {{"epochs", 10.0}}},
      {"nb-train-accuracy", {}},
  };

  ScenarioResult result;
  const auto collect = [&](const std::vector<proto::MiningResponse>& responses) {
    for (const auto& r : responses) result.reports.push_back(r.values);
  };
  collect(engine.run_batch(load));
  (void)session.contribute(0, stream.slice(0, 25));
  collect(engine.run_batch(load));
  (void)session.contribute(1, stream.slice(25, 50));
  collect(engine.run_batch(load));

  const auto view = engine.pool_view();
  result.pool_features = view.data->features();
  result.pool_labels = view.data->labels();
  return result;
}

bool identical(const ScenarioResult& a, const ScenarioResult& b) {
  if (a.reports != b.reports) return false;
  if (a.pool_labels != b.pool_labels) return false;
  return a.pool_features.approx_equal(b.pool_features, 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t rows = 16384, batches = 8;
  const std::size_t batch_records = 64;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      rows = 4096;
      batches = 4;
    } else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      rows = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--batches") == 0 && i + 1 < argc) {
      batches = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: streaming_ingest [--quick] [--rows N] [--batches B]\n");
      return 2;
    }
  }
  if (rows < 512 || batches == 0) {
    std::fprintf(stderr, "error: need --rows >= 512 and --batches >= 1\n");
    return 2;
  }

  std::printf("pool: %zu records (+%zu batches x %zu records)\n\n", rows, batches,
              batch_records);
  TimingOutcome timing = run_timing(rows, batches, batch_records);
  sap::bench::emit_table("streaming_ingest", timing.table,
                         {.transport = "simulated+threaded-local", .threads = 8});

  const double nb_speedup = sap::bench::exact_median(timing.nb_speedups);
  const double knn_speedup = sap::bench::exact_median(timing.knn_speedups);
  std::printf("\nmedian incremental speedup: nb %.1fx, knn %.1fx (bar: >= 3x)\n",
              nb_speedup, knn_speedup);
  bool ok = timing.ok && nb_speedup >= 3.0 && knn_speedup >= 3.0;
  if (nb_speedup < 3.0 || knn_speedup < 3.0)
    std::fprintf(stderr, "FAIL: incremental refit speedup below the 3x bar\n");

  // Determinism: reports and final pool bit-identical across transports and
  // engine thread counts.
  const auto reference = run_scenario(proto::TransportKind::kSimulated, 0);
  bool deterministic = true;
  for (const auto transport :
       {proto::TransportKind::kSimulated, proto::TransportKind::kThreadedLocal}) {
    for (const std::size_t threads : {std::size_t{0}, std::size_t{2}, std::size_t{8}}) {
      const auto got = run_scenario(transport, threads);
      if (!identical(reference, got)) {
        std::fprintf(stderr, "FAIL: scenario (%s, %zu threads) diverges from reference\n",
                     proto::to_string(transport).c_str(), threads);
        deterministic = false;
      }
    }
  }
  if (deterministic)
    std::printf("determinism: reports + pool bit-identical across 2 transports x "
                "{0,2,8} engine threads (ok)\n");
  ok = ok && deterministic;
  return ok ? 0 : 1;
}
