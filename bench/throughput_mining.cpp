// Mining-serving throughput: cached parameterized serving vs per-request
// retraining, across engine thread counts.
//
// The bench builds one unified pool (no protocol cost — the engine serves
// standalone, exactly as it does inside a session's Mine state), then pushes
// a fixed request load through the MiningEngine in three configurations:
//
//   retrain-8t    cache off, 8 threads  — PR 1's effective behavior: every
//                 request re-trains its model from scratch;
//   cached-8t     cache on,  8 threads  — the train-once/query-many split;
//   cached-serial cache on,  0 threads  — the serial reference execution.
//
// It reports requests/sec and p50/p99 per-request latency, verifies the
// determinism invariant (threaded reports bit-identical to serial), and
// asserts the acceptance bar: cached serving >= 5x retraining at 8 threads.
// Output: aligned table on stdout + BENCH_throughput_mining.json.
//
// Usage: throughput_mining [--quick] [--requests N] [--dataset name]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "protocol/mining_engine.hpp"

namespace {

using sap::Stopwatch;
using sap::Table;
namespace proto = sap::proto;

/// The serving load: parameterized trainable requests over a handful of
/// distinct hyperparameter sets (so the cache holds several live models),
/// mixed with cheap structural requests — a plausible query mix for one
/// exchange serving many analysts.
std::vector<proto::MiningRequest> make_load(std::size_t count) {
  const std::vector<proto::MiningRequest> variants = {
      {"svm-train-accuracy", {{"c", 1.0}, {"eval-records", 64.0}}},
      {"svm-train-accuracy", {{"c", 8.0}, {"eval-records", 64.0}}},
      {"perceptron-train-accuracy", {{"epochs", 40.0}, {"eval-records", 64.0}}},
      {"knn-train-accuracy", {{"k", 3.0}, {"eval-records", 64.0}}},
      {"knn-train-accuracy", {{"k", 7.0}, {"eval-records", 64.0}}},
      {"nb-train-accuracy", {{"eval-records", 64.0}}},
      {"record-count", {}},
      {"class-histogram", {}},
  };
  std::vector<proto::MiningRequest> load;
  load.reserve(count);
  for (std::size_t i = 0; i < count; ++i) load.push_back(variants[i % variants.size()]);
  return load;
}

struct RunStats {
  double wall_ms = 0.0;
  double req_per_sec = 0.0;
  sap::bench::LatencySummary latency;  ///< per-request ms (histogram-backed)
  std::size_t fits = 0;
  std::size_t hits = 0;
  std::vector<proto::MiningResponse> responses;
};

RunStats serve(const sap::data::Dataset& pool, const std::vector<proto::MiningRequest>& load,
               std::size_t threads, bool cache) {
  proto::MiningEngine engine({.threads = threads,
                              .cache_models = cache,
                              .shards = 1,
                              .layout = proto::ShardLayout::kHashMod,
                              .owned = {}});
  engine.set_pool(pool);
  Stopwatch sw;
  RunStats stats;
  stats.responses = engine.run_batch(load);
  stats.wall_ms = sw.millis();
  stats.req_per_sec = 1000.0 * static_cast<double>(load.size()) / stats.wall_ms;

  std::vector<double> lat;
  lat.reserve(stats.responses.size());
  for (const auto& r : stats.responses) lat.push_back(r.millis);
  stats.latency = sap::bench::summarize_latency(lat);
  const auto cache_stats = engine.cache_stats();
  stats.fits = cache_stats.fits;
  stats.hits = cache_stats.hits;
  return stats;
}

bool reports_identical(const std::vector<proto::MiningResponse>& a,
                       const std::vector<proto::MiningResponse>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].values != b[i].values) return false;  // bit-exact comparison
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t requests = 512;
  std::string dataset = "Diabetes";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      requests = 96;
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      if (requests == 0) {
        std::fprintf(stderr, "error: --requests needs a positive count\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--dataset") == 0 && i + 1 < argc) {
      dataset = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: throughput_mining [--quick] [--requests N] [--dataset name]\n");
      return 2;
    }
  }

  const auto pool = sap::bench::normalized_uci(dataset, /*seed=*/17);
  const auto load = make_load(requests);
  std::printf("pool: %s (%zu records x %zu dims), %zu requests\n\n", pool.name().c_str(),
              pool.size(), pool.dims(), load.size());

  const RunStats retrain = serve(pool, load, /*threads=*/8, /*cache=*/false);
  const RunStats cached = serve(pool, load, /*threads=*/8, /*cache=*/true);
  const RunStats serial = serve(pool, load, /*threads=*/0, /*cache=*/true);

  Table table({"mode", "threads", "requests", "wall ms", "req/s", "p50 ms", "p95 ms",
               "p99 ms", "fits", "cache hits"});
  const auto add = [&](const char* mode, std::size_t threads, const RunStats& s) {
    table.add_row({mode, std::to_string(threads), std::to_string(requests),
                   Table::num(s.wall_ms, 1), Table::num(s.req_per_sec, 1),
                   Table::num(s.latency.p50, 3), Table::num(s.latency.p95, 3),
                   Table::num(s.latency.p99, 3), std::to_string(s.fits),
                   std::to_string(s.hits)});
  };
  add("retrain-8t", 8, retrain);
  add("cached-8t", 8, cached);
  add("cached-serial", 0, serial);
  sap::bench::emit_table("throughput_mining", table,
                         {.transport = "simulated", .threads = 8});

  const double speedup = cached.req_per_sec / retrain.req_per_sec;
  std::printf("\ncached/retrain speedup at 8 threads: %.1fx\n", speedup);

  // Determinism invariant: the threaded batch's reports are bit-identical
  // to the serial reference.
  if (!reports_identical(cached.responses, serial.responses)) {
    std::fprintf(stderr, "FAIL: threaded reports differ from serial reference\n");
    return 1;
  }
  std::printf("determinism: threaded reports bit-identical to serial (ok)\n");

  if (speedup < 5.0) {
    std::fprintf(stderr, "FAIL: cached serving speedup %.1fx below the 5x bar\n", speedup);
    return 1;
  }
  return 0;
}
