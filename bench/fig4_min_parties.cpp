// Figure 4 reproduction: lower bound on the number of parties versus the
// desired satisfaction level s0, for the three optimality rates the paper
// reads off Figure 3 (Diabetes 0.95, Shuttle 0.89, Votes 0.98).
//
// The brief announcement gives the risk formula (eq. 2) but not the exact
// acceptance threshold behind the plot, so both defensible criteria are
// printed (see DESIGN.md §3):
//   primary  — residual tolerance: (1 - s0 r)/(k-1) <= 1 - s0,
//   alt      — no extra risk:      (1 - s0 r)/(k-1) <= 1 - r.
// The primary criterion reproduces the figure's qualitative shape: min-k
// rises steeply as s0 -> 1, and the lowest-opt-rate dataset (Shuttle) needs
// the most parties.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "optimize/optimizer.hpp"
#include "protocol/risk.hpp"

int main() {
  using namespace sap;
  struct Entry {
    std::string dataset;
    double rate;
  };
  const std::vector<Entry> paper_rates{
      {"Diabetes", 0.95}, {"Shuttle", 0.89}, {"Votes", 0.98}};

  std::printf("== Figure 4: minimum number of parties vs satisfaction level s0 ==\n\n");

  auto sweep = [&](proto::MinPartiesCriterion criterion, const char* label) {
    std::printf("criterion: %s\n", label);
    std::vector<std::string> header{"s0"};
    for (const auto& e : paper_rates)
      header.push_back(e.dataset + " (r=" + Table::num(e.rate, 2) + ")");
    Table table(header);
    for (double s0 = 0.90; s0 < 0.9951; s0 += 0.01) {
      std::vector<std::string> row{Table::num(s0, 2)};
      for (const auto& e : paper_rates) {
        const auto k = proto::min_parties(s0, e.rate, criterion, 500);
        row.push_back(k > 500 ? ">500" : std::to_string(k));
      }
      table.add_row(std::move(row));
    }
    std::fputs(table.str().c_str(), stdout);
    std::printf("\n");
  };

  sweep(proto::MinPartiesCriterion::kResidualTolerance,
        "residual tolerance (primary; (1 - s0 r)/(k-1) <= 1 - s0)");
  sweep(proto::MinPartiesCriterion::kNoExtraRisk,
        "no extra risk (alternative; (1 - s0 r)/(k-1) <= 1 - r)");

  // Ground the curve in *measured* optimality rates of our synthetic stand-ins
  // (ties Figure 4 to Figure 3's machinery).
  std::printf("measured optimality rates of the synthetic stand-ins (12 runs/dataset):\n");
  opt::OptimizerOptions opts;
  opts.candidates = 6;
  opts.refine_steps = 3;
  opts.noise_sigma = 0.1;
  opts.max_eval_records = 120;
  opts.attacks = {.naive = true, .ica = false, .known_inputs = 4};
  Table measured({"dataset", "measured rate", "min k @ s0=0.95 (primary)"});
  for (const auto& e : paper_rates) {
    const data::Dataset pool = bench::normalized_uci(e.dataset, 4);
    rng::Engine eng(99);
    const auto est = opt::estimate_optimality_rate(pool.features_T(), opts, 12, eng);
    const auto k = proto::min_parties(0.95, est.rate,
                                      proto::MinPartiesCriterion::kResidualTolerance, 500);
    measured.add_row({e.dataset, Table::num(est.rate), std::to_string(k)});
  }
  std::fputs(measured.str().c_str(), stdout);
  std::printf("\npaper-shape check: min-k grows as s0 -> 1 and is largest for the\n"
              "lowest optimality rate (Shuttle 0.89) under the primary criterion.\n");
  return 0;
}
