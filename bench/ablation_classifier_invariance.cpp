// Ablation Abl-5: the rotation-invariance boundary.
//
// The paper's accuracy-preservation claim covers classifiers invariant to
// distance-preserving transforms. This bench measures accuracy deviation
// under a PURE rotation+translation (sigma = 0, so any deviation is due to
// the model family, not noise) for:
//   KNN          — exactly invariant (distances unchanged),
//   SVM (RBF)    — invariant up to SMO randomness (kernel uses distances),
//   perceptron   — invariant in expressiveness (linear separability is
//                  rotation-invariant; training dynamics nearly so),
//   Gaussian NB  — NOT invariant: axis-aligned independence is destroyed.
//
// Expectation: first three rows near zero; Naive Bayes degrades visibly on
// datasets with anisotropic class structure.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "classify/knn.hpp"
#include "classify/naive_bayes.hpp"
#include "classify/perceptron.hpp"
#include "classify/svm.hpp"
#include "common/table.hpp"

namespace {

/// Zero-mean classes separated only by axis-aligned variances — the
/// construction on which rotation provably destroys Naive Bayes (after a
/// 45-degree rotation both classes have identical marginal moments).
sap::data::Dataset variance_separated(std::uint64_t seed) {
  using namespace sap;
  rng::Engine eng(seed);
  const std::size_t n = 250;
  linalg::Matrix f(2 * n, 2);
  std::vector<int> labels(2 * n);
  for (std::size_t i = 0; i < 2 * n; ++i) {
    const bool pos = i >= n;
    f(i, 0) = eng.normal(0.0, pos ? 3.0 : 0.3);
    f(i, 1) = eng.normal(0.0, pos ? 0.3 : 3.0);
    labels[i] = pos;
  }
  return {"VarSep", std::move(f), std::move(labels)};
}

sap::data::Dataset bench_dataset(const std::string& name, std::uint64_t seed) {
  if (name == "VarSep") return variance_separated(seed);
  return sap::bench::normalized_uci(name, seed);
}

template <typename ClassifierT>
double rotation_deviation(const std::string& dataset, std::uint64_t seed) {
  using namespace sap;
  const data::Dataset pool = bench_dataset(dataset, seed);
  rng::Engine eng(seed * 131 + 7);
  const auto split = data::stratified_split(pool, 0.7, eng);

  ClassifierT original;
  original.fit(split.train);
  const double acc_orig = ml::accuracy(original, split.test);

  const auto g = perturb::GeometricPerturbation::random(pool.dims(), 0.0, eng);
  const data::Dataset train_r(pool.name(),
                              g.apply_noiseless(split.train.features_T()).transpose(),
                              split.train.labels());
  const data::Dataset test_r(pool.name(),
                             g.apply_noiseless(split.test.features_T()).transpose(),
                             split.test.labels());
  ClassifierT rotated;
  rotated.fit(train_r);
  return (ml::accuracy(rotated, test_r) - acc_orig) * 100.0;
}

}  // namespace

int main() {
  using namespace sap;
  const std::vector<std::string> datasets{"Iris", "Wine", "Diabetes", "Ionosphere",
                                          "VarSep"};
  const std::vector<std::uint64_t> seeds{1, 2, 3};

  std::printf("== Ablation: accuracy deviation under pure rotation (sigma = 0) ==\n");
  std::printf("(percentage points; rows near zero = rotation-invariant family)\n\n");

  std::vector<std::string> header{"classifier"};
  for (const auto& d : datasets) header.push_back(d);
  Table table(header);

  auto add_row = [&](const char* label, auto measure) {
    std::vector<std::string> row{label};
    for (const auto& dataset : datasets) {
      double dev = 0.0;
      for (const auto seed : seeds) dev += measure(dataset, seed);
      row.push_back(Table::num(dev / static_cast<double>(seeds.size()), 2));
    }
    table.add_row(std::move(row));
  };

  add_row("KNN(5)", [](const std::string& d, std::uint64_t s) {
    return rotation_deviation<ml::Knn>(d, s);
  });
  add_row("SVM(RBF)", [](const std::string& d, std::uint64_t s) {
    return rotation_deviation<ml::Svm>(d, s);
  });
  add_row("perceptron", [](const std::string& d, std::uint64_t s) {
    return rotation_deviation<ml::Perceptron>(d, s);
  });
  add_row("GaussianNB", [](const std::string& d, std::uint64_t s) {
    return rotation_deviation<ml::GaussianNaiveBayes>(d, s);
  });

  bench::emit_table("classifier_invariance", table);
  std::printf("\nexpected: KNN exactly 0 everywhere; SVM/perceptron within noise of 0;\n"
              "GaussianNB collapses on VarSep (variance-separated classes, where the\n"
              "45-degree marginal argument applies) — the boundary of the paper's\n"
              "invariance claim (§1 'many popular classifiers ... are invariant').\n"
              "On mean-separated UCI-style data NB survives rotation because its\n"
              "induced boundary is near-linear, which is itself rotation-invariant.\n");
  return 0;
}
