// Micro-benchmarks for the perturbation / privacy / protocol hot paths
// (google-benchmark): perturbation application, adaptor application,
// FastICA, full attack-suite evaluation, SMO training, and one complete
// SAP protocol round.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "classify/svm.hpp"
#include "linalg/orthogonal.hpp"
#include "optimize/optimizer.hpp"
#include "perturb/geometric.hpp"
#include "perturb/space_adaptor.hpp"
#include "privacy/evaluator.hpp"
#include "privacy/fastica.hpp"

namespace {

using sap::linalg::Matrix;
using sap::rng::Engine;

void BM_PerturbApply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Engine eng(1);
  const Matrix x = Matrix::generate(16, n, [&] { return eng.uniform(); });
  const auto g = sap::perturb::GeometricPerturbation::random(16, 0.1, eng);
  for (auto _ : state) {
    Matrix y = g.apply(x, eng);
    benchmark::DoNotOptimize(y.data().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PerturbApply)->Arg(100)->Arg(1000)->Arg(10000);

void BM_AdaptorApply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Engine eng(2);
  const Matrix y = Matrix::generate(16, n, [&] { return eng.uniform(); });
  const auto g_i = sap::perturb::GeometricPerturbation::random(16, 0.1, eng);
  const auto g_t = sap::perturb::GeometricPerturbation::random(16, 0.0, eng);
  const auto a = sap::perturb::SpaceAdaptor::between(g_i, g_t);
  for (auto _ : state) {
    Matrix z = a.apply(y);
    benchmark::DoNotOptimize(z.data().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AdaptorApply)->Arg(100)->Arg(1000)->Arg(10000);

void BM_FastIca(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Engine eng(3);
  const Matrix s = Matrix::generate(8, n, [&] { return eng.uniform(); });
  const Matrix r = sap::linalg::random_orthogonal(8, eng);
  const Matrix y = r * s;
  for (auto _ : state) {
    auto res = sap::privacy::fast_ica(y, {.max_iterations = 100}, eng);
    benchmark::DoNotOptimize(res.sources.data().data());
  }
}
BENCHMARK(BM_FastIca)->Arg(160)->Arg(500)->Arg(2000);

void BM_AttackSuiteEvaluate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Engine eng(4);
  const Matrix x = Matrix::generate(8, n, [&] { return eng.uniform(); });
  const auto g = sap::perturb::GeometricPerturbation::random(8, 0.1, eng);
  const Matrix y = g.apply(x, eng);
  const sap::privacy::AttackSuite suite({.naive = true, .ica = true, .known_inputs = 4});
  for (auto _ : state) {
    auto report = suite.evaluate(x, y, eng);
    benchmark::DoNotOptimize(report.rho);
  }
}
BENCHMARK(BM_AttackSuiteEvaluate)->Arg(160)->Arg(500);

void BM_OptimizeRun(benchmark::State& state) {
  const auto pool = sap::bench::normalized_uci("Diabetes", 12);
  const Matrix x = pool.features_T();
  sap::opt::OptimizerOptions opts;
  opts.candidates = static_cast<std::size_t>(state.range(0));
  opts.refine_steps = 0;
  opts.max_eval_records = 120;
  opts.attacks = {.naive = true, .ica = false, .known_inputs = 4};
  Engine eng(5);
  for (auto _ : state) {
    auto res = sap::opt::optimize_perturbation(x, opts, eng);
    benchmark::DoNotOptimize(res.best_rho);
  }
}
BENCHMARK(BM_OptimizeRun)->Arg(4)->Arg(16);

void BM_SmoFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Engine eng(6);
  Matrix x(n, 8);
  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool pos = i % 2 == 0;
    for (std::size_t f = 0; f < 8; ++f) x(i, f) = eng.normal(pos ? 1.0 : -1.0, 0.7);
    y[i] = pos ? 1 : -1;
  }
  for (auto _ : state) {
    sap::ml::BinarySvm svm;
    svm.fit(x, y);
    benchmark::DoNotOptimize(svm.support_vector_count());
  }
}
BENCHMARK(BM_SmoFit)->Arg(100)->Arg(400)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_SapSessionRound(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto transport = static_cast<sap::proto::TransportKind>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    const auto pool = sap::bench::normalized_uci("Iris", 13);
    Engine eng(7);
    sap::data::PartitionOptions popts;
    auto parts = sap::data::partition(pool, k, popts, eng);
    auto opts = sap::proto::SapOptions::fast();
    opts.compute_satisfaction = false;
    opts.transport = transport;
    state.ResumeTiming();
    sap::proto::SapSession session(std::move(parts), opts);
    auto result = session.run();
    benchmark::DoNotOptimize(result.total_bytes);
  }
  state.SetLabel("providers=" + std::to_string(k) + " transport=" +
                 sap::proto::to_string(transport));
}
BENCHMARK(BM_SapSessionRound)
    ->Args({3, 0})
    ->Args({6, 0})
    ->Args({10, 0})
    ->Args({3, 1})
    ->Args({6, 1})
    ->Args({10, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
