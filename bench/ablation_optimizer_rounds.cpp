// Ablation Abl-2: how many optimizer rounds does Figure 3's "100 rounds"
// actually need?
//
// Sweeps the number of random candidates per optimization run and reports
// the achieved rho (mean over repeats), the gain over a single random draw,
// and wall time — locating the knee of the search.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "optimize/optimizer.hpp"

int main() {
  using namespace sap;
  const std::string dataset = "Diabetes";
  const std::vector<std::size_t> candidate_counts{1, 2, 4, 8, 16, 32, 64};
  const int kRepeats = 6;

  std::printf("== Ablation: optimizer candidates vs achieved rho (%s) ==\n\n",
              dataset.c_str());

  const data::Dataset pool = bench::normalized_uci(dataset, 6);
  const linalg::Matrix x = pool.features_T();

  double rho_single = 0.0;
  Table table({"candidates", "mean rho", "gain vs 1", "ms/run"});
  for (const std::size_t n : candidate_counts) {
    opt::OptimizerOptions opts;
    opts.candidates = n;
    opts.refine_steps = 0;  // isolate the random-search phase
    opts.noise_sigma = 0.1;
    opts.max_eval_records = 120;
    opts.attacks = {.naive = true, .ica = false, .known_inputs = 4};

    rng::Engine eng(23);
    double total = 0.0;
    Stopwatch sw;
    for (int r = 0; r < kRepeats; ++r)
      total += opt::optimize_perturbation(x, opts, eng).best_rho;
    const double ms = sw.millis() / kRepeats;
    const double mean = total / kRepeats;
    if (n == 1) rho_single = mean;
    table.add_row({std::to_string(n), Table::num(mean), Table::num(mean - rho_single),
                   Table::num(ms, 1)});
  }
  bench::emit_table("optimizer_rounds", table);
  std::printf("\nexpected: diminishing returns (max-of-n concentrates near b-hat).\n");

  // Refinement contribution at a fixed candidate budget.
  std::printf("\nGivens refinement on top of 8 candidates:\n");
  Table refine({"refine_steps", "mean rho"});
  for (const std::size_t steps : {std::size_t{0}, std::size_t{4}, std::size_t{8},
                                  std::size_t{16}}) {
    opt::OptimizerOptions opts;
    opts.candidates = 8;
    opts.refine_steps = steps;
    opts.noise_sigma = 0.1;
    opts.max_eval_records = 120;
    opts.attacks = {.naive = true, .ica = false, .known_inputs = 4};
    rng::Engine eng(29);
    double total = 0.0;
    for (int r = 0; r < kRepeats; ++r)
      total += opt::optimize_perturbation(x, opts, eng).best_rho;
    refine.add_row({std::to_string(steps), Table::num(total / kRepeats)});
  }
  std::fputs(refine.str().c_str(), stdout);
  return 0;
}
