// Ablation Abl-6: how real is pi = 1/(k-1)?
//
// The paper's identifiability bound treats shards as exchangeable. But class
// labels travel in the clear, so a miner that knows per-provider class
// profiles (public case-mix statistics) can fingerprint shards. This bench
// runs the source-linking adversary against Uniform and Class-skewed
// partitions for growing k and reports linking accuracy vs the 1/(k-1)
// baseline.
//
// Expectation: Uniform partitioning stays near the baseline (shards look
// alike); Class-skewed partitioning is dramatically more linkable — a real
// caveat for deployments, and an argument for the Uniform regime.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "protocol/adversary.hpp"

int main() {
  using namespace sap;
  const std::string dataset = "Credit_g";
  const int kRepeats = 10;

  std::printf("== Ablation: source-linking adversary vs the 1/(k-1) baseline (%s) ==\n\n",
              dataset.c_str());

  Table table({"k", "baseline 1/(k-1)", "linking acc (Uniform)", "linking acc (Class)"});
  for (std::size_t k = 4; k <= 10; k += 2) {
    double acc_uniform = 0.0, acc_class = 0.0;
    for (int rep = 0; rep < kRepeats; ++rep) {
      const data::Dataset pool = bench::normalized_uci(dataset, 20 + rep);
      const auto pooled_classes = pool.classes();
      for (const auto kind : {data::PartitionKind::kUniform, data::PartitionKind::kClass}) {
        rng::Engine eng(100 * k + static_cast<std::uint64_t>(rep));
        data::PartitionOptions popts;
        popts.kind = kind;
        const auto shards = data::partition(pool, k, popts, eng);
        // Reference-sample design: the miner observes one half of each
        // shard; the adversary's public profiles come from the other half
        // (simulating previously published case-mix statistics).
        std::vector<data::Dataset> observed, reference;
        for (const auto& shard : shards) {
          auto halves = data::train_test_split(shard, 0.5, eng);
          observed.push_back(std::move(halves.train));
          reference.push_back(std::move(halves.test));
        }
        const auto observations = proto::observe_shards(observed, pooled_classes);
        const auto profiles = proto::provider_profiles(reference, pooled_classes);
        const auto result = proto::link_sources(observations, profiles);
        (kind == data::PartitionKind::kUniform ? acc_uniform : acc_class) +=
            result.accuracy;
      }
    }
    table.add_row({std::to_string(k), Table::num(1.0 / static_cast<double>(k - 1)),
                   Table::num(acc_uniform / kRepeats), Table::num(acc_class / kRepeats)});
  }
  bench::emit_table("source_linking", table);
  std::printf(
      "\nnote: profiles come from a held-out half of each shard (published\n"
      "case-mix statistics), never from the observed shard itself. Uniform\n"
      "shards all look like the pool, so linkage stays near the 1/(k-1)\n"
      "baseline; Class-skewed shards carry distinctive fingerprints and are\n"
      "linkable far above it. Deployments wanting the paper's pi should keep\n"
      "shard statistics near-uniform or strip labels before the exchange.\n");
  return 0;
}
