// Unit and statistical tests for sap::rng::Engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "rng/rng.hpp"

namespace {

using sap::rng::Engine;

TEST(Rng, DeterministicForSameSeed) {
  Engine a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Engine a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedIsValid) {
  Engine e(0);
  // Must not get stuck at zero.
  std::uint64_t ored = 0;
  for (int i = 0; i < 8; ++i) ored |= e();
  EXPECT_NE(ored, 0u);
}

TEST(Rng, UniformInUnitInterval) {
  Engine e(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = e.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Engine e(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = e.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Engine e(11);
  double acc = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) acc += e.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversAllBucketsRoughlyEvenly) {
  Engine e(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[e.uniform_index(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
}

TEST(Rng, UniformIndexZeroThrows) {
  Engine e(1);
  EXPECT_THROW(e.uniform_index(0), sap::Error);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Engine e(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = e.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntBadRangeThrows) {
  Engine e(1);
  EXPECT_THROW(e.uniform_int(3, 2), sap::Error);
}

TEST(Rng, NormalMomentsMatchStandardGaussian) {
  Engine e(19);
  const int n = 200000;
  double m1 = 0.0, m2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = e.normal();
    m1 += x;
    m2 += x * x;
  }
  m1 /= n;
  m2 /= n;
  EXPECT_NEAR(m1, 0.0, 0.02);
  EXPECT_NEAR(m2, 1.0, 0.03);
}

TEST(Rng, NormalScaledMeanSigma) {
  Engine e(23);
  const int n = 100000;
  double m1 = 0.0, m2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = e.normal(10.0, 2.0);
    m1 += x;
    m2 += x * x;
  }
  m1 /= n;
  const double var = m2 / n - m1 * m1;
  EXPECT_NEAR(m1, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, NormalNegativeSigmaThrows) {
  Engine e(1);
  EXPECT_THROW(e.normal(0.0, -1.0), sap::Error);
}

TEST(Rng, BernoulliFrequencyTracksP) {
  Engine e(29);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += e.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PermutationIsAPermutation) {
  Engine e(31);
  for (std::size_t n : {0u, 1u, 2u, 17u, 100u}) {
    auto p = e.permutation(n);
    ASSERT_EQ(p.size(), n);
    std::set<std::size_t> seen(p.begin(), p.end());
    EXPECT_EQ(seen.size(), n);
    if (n) {
      EXPECT_EQ(*seen.begin(), 0u);
      EXPECT_EQ(*seen.rbegin(), n - 1);
    }
  }
}

TEST(Rng, PermutationIsUniformOverPositions) {
  // Each value should land in each position with probability 1/n.
  Engine e(37);
  const std::size_t n = 5;
  const int trials = 30000;
  std::vector<std::vector<int>> counts(n, std::vector<int>(n, 0));
  for (int t = 0; t < trials; ++t) {
    auto p = e.permutation(n);
    for (std::size_t i = 0; i < n; ++i) ++counts[i][p[i]];
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(counts[i][j], trials / static_cast<int>(n), trials / 5 * 0.25);
}

TEST(Rng, SampleWithoutReplacementDistinctAndInRange) {
  Engine e(41);
  auto s = e.sample_without_replacement(50, 12);
  ASSERT_EQ(s.size(), 12u);
  std::set<std::size_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 12u);
  for (auto v : s) EXPECT_LT(v, 50u);
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Engine e(43);
  auto s = e.sample_without_replacement(8, 8);
  std::set<std::size_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, SampleWithoutReplacementTooManyThrows) {
  Engine e(1);
  EXPECT_THROW(e.sample_without_replacement(3, 4), sap::Error);
}

TEST(Rng, DirichletSumsToOneAndPositive) {
  Engine e(47);
  for (double alpha : {0.3, 1.0, 5.0}) {
    auto w = e.dirichlet(6, alpha);
    ASSERT_EQ(w.size(), 6u);
    double total = 0.0;
    for (double v : w) {
      EXPECT_GT(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(Rng, DirichletLargeAlphaIsNearUniform) {
  Engine e(53);
  const std::size_t n = 4;
  std::vector<double> mean(n, 0.0);
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    auto w = e.dirichlet(n, 100.0);
    for (std::size_t i = 0; i < n; ++i) mean[i] += w[i];
  }
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(mean[i] / trials, 0.25, 0.02);
}

TEST(Rng, DirichletBadAlphaThrows) {
  Engine e(1);
  EXPECT_THROW(e.dirichlet(3, 0.0), sap::Error);
  EXPECT_THROW(e.dirichlet(3, -1.0), sap::Error);
}

TEST(Rng, SpawnedChildIndependentOfParentContinuation) {
  Engine parent(99);
  Engine child = parent.spawn();
  // Child stream should not mirror the parent stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (parent() == child());
  EXPECT_LT(equal, 2);
}

TEST(Rng, SpawnDeterministicGivenParentState) {
  Engine p1(7), p2(7);
  Engine c1 = p1.spawn();
  Engine c2 = p2.spawn();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(c1(), c2());
}

TEST(Rng, SatisfiesUniformRandomBitGeneratorForStdShuffle) {
  Engine e(61);
  std::vector<int> v(20);
  std::iota(v.begin(), v.end(), 0);
  auto sorted = v;
  std::shuffle(v.begin(), v.end(), e);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

}  // namespace
