// Reactor front-door tests — the epoll serving path (net/reactor.hpp):
//
//   * protocol surface: Hello/Welcome claims, echo round trips, pipelined
//     requests answered in order through the writev-batched flush;
//   * sharding: accepted connections dealt round-robin across loops, every
//     shard serving;
//   * eviction: slow-loris half-frames and silent connections die on the
//     timer wheel, framing garbage dies immediately, kBye flushes first;
//   * churn: a thousand short-lived connections accepted, served, and
//     reclaimed (run under TSAN in CI — the cross-thread surface is small
//     and this leans on it);
//   * daemon integration: MinerDaemon's reactor endpoint serves mining
//     requests and contributions BIT-IDENTICAL to the legacy hub path and
//     to direct in-process MiningEngine calls;
//   * FrameReader hygiene: buffer capacity stays flat across 10k frames.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <set>
#include <thread>

#include "common/error.hpp"
#include "data/normalize.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "net/frame.hpp"
#include "net/reactor.hpp"
#include "net/remote.hpp"
#include "net/socket.hpp"
#include "protocol/party_logic.hpp"

namespace {

using sap::data::Dataset;
using sap::rng::Engine;
namespace net = sap::net;
namespace proto = sap::proto;
using Clock = std::chrono::steady_clock;

// ---- raw-socket client helpers -------------------------------------------

void send_frame(net::TcpSocket& sock, const net::Frame& frame) {
  std::vector<std::uint8_t> bytes;
  net::encode_frame(frame, bytes);
  sock.write_all(bytes.data(), bytes.size(), 5000);
}

net::Frame read_frame(net::TcpSocket& sock, net::FrameReader& reader,
                      int timeout_ms = 10000) {
  net::Frame frame;
  std::vector<std::uint8_t> buf(16u << 10);
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!reader.next(frame)) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    SAP_REQUIRE(left.count() > 0, "test client: timed out waiting for a frame");
    bool closed = false;
    const std::size_t got =
        sock.read_some(buf.data(), buf.size(), static_cast<int>(left.count()), closed);
    SAP_REQUIRE(got > 0 || !closed, "test client: peer closed the connection");
    if (got > 0) reader.feed(buf.data(), got);
  }
  return frame;
}

std::uint32_t say_hello(net::TcpSocket& sock, net::FrameReader& reader) {
  net::Frame hello;
  hello.type = net::FrameType::kHello;
  hello.body = net::u32_body(net::kClaimAnyParty);
  send_frame(sock, hello);
  const auto welcome = read_frame(sock, reader);
  SAP_REQUIRE(welcome.type == net::FrameType::kWelcome,
              "test client: expected kWelcome");
  return net::body_u32(welcome.body);
}

/// True when the peer closes within `timeout_ms` (no data expected).
bool wait_for_eof(net::TcpSocket& sock, int timeout_ms) {
  std::uint8_t buf[512];
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (Clock::now() < deadline) {
    bool closed = false;
    try {
      (void)sock.read_some(buf, sizeof buf, 50, closed);
    } catch (const sap::Error&) {
      return true;  // reset counts as closed
    }
    if (closed) return true;
  }
  return false;
}

/// Echo handler: every request comes straight back with from/to swapped.
net::Reactor::Handler echo_handler() {
  return [](const net::Frame& in) {
    net::Frame out = in;
    out.from = in.to;
    out.to = in.from;
    return std::vector<net::Frame>{out};
  };
}

bool stats_settle(const net::Reactor& reactor,
                  const std::function<bool(const net::Reactor::Stats&)>& done,
                  int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (Clock::now() < deadline) {
    if (done(reactor.stats())) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return done(reactor.stats());
}

// ---- protocol surface ----------------------------------------------------

TEST(Reactor, EchoRoundTripAndLoopFairness) {
  net::ReactorOptions opts;
  opts.loops = 4;
  opts.compute_threads = 2;
  net::Reactor reactor(opts, echo_handler());
  const auto addr = reactor.local_addr();

  constexpr std::size_t kClients = 8;
  std::vector<net::TcpSocket> socks;
  std::vector<net::FrameReader> readers(kClients);
  std::set<std::uint32_t> ids;
  for (std::size_t c = 0; c < kClients; ++c) {
    socks.push_back(net::TcpSocket::connect(addr, 5000));
    const auto id = say_hello(socks[c], readers[c]);
    EXPECT_GE(id, opts.first_client_id);
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), kClients);  // ids never collide

  // Every connection is served, whatever loop owns it.
  for (std::size_t c = 0; c < kClients; ++c) {
    net::Frame req;
    req.type = net::FrameType::kData;
    req.payload_kind = 42;
    req.from = *std::next(ids.begin(), static_cast<std::ptrdiff_t>(c));
    req.to = 0;
    req.body = net::u32_body(static_cast<std::uint32_t>(c * 1000));
    send_frame(socks[c], req);
    const auto resp = read_frame(socks[c], readers[c]);
    ASSERT_EQ(resp.type, net::FrameType::kData);
    EXPECT_EQ(resp.payload_kind, 42);
    EXPECT_EQ(net::body_u32(resp.body), c * 1000);
  }

  // The acceptor deals strictly round-robin: 8 connections over 4 loops
  // land exactly 2 per shard.
  const auto stats = reactor.stats();
  EXPECT_EQ(stats.accepted, kClients);
  EXPECT_EQ(stats.live, kClients);
  EXPECT_EQ(stats.requests, kClients);
  EXPECT_EQ(stats.responses, kClients);
  ASSERT_EQ(stats.loop_conns.size(), 4u);
  for (const auto per_loop : stats.loop_conns) EXPECT_EQ(per_loop, 2u);
}

TEST(Reactor, PipelinedRequestsAnswerInOrder) {
  net::ReactorOptions opts;
  opts.loops = 1;
  opts.compute_threads = 1;  // one lane: completion order == request order
  net::Reactor reactor(opts, echo_handler());

  auto sock = net::TcpSocket::connect(reactor.local_addr(), 5000);
  net::FrameReader reader;
  const auto id = say_hello(sock, reader);

  // 100 requests in ONE write: the loop decodes them in a burst and the
  // responses ride back through the writev-batched flush.
  constexpr std::uint32_t kRequests = 100;
  std::vector<std::uint8_t> burst;
  for (std::uint32_t seq = 0; seq < kRequests; ++seq) {
    net::Frame req;
    req.type = net::FrameType::kData;
    req.from = id;
    req.to = 0;
    req.body = net::u32_body(seq);
    net::encode_frame(req, burst);
  }
  sock.write_all(burst.data(), burst.size(), 5000);

  for (std::uint32_t seq = 0; seq < kRequests; ++seq) {
    const auto resp = read_frame(sock, reader);
    ASSERT_EQ(resp.type, net::FrameType::kData);
    EXPECT_EQ(net::body_u32(resp.body), seq) << "response out of order";
  }
  EXPECT_EQ(reactor.stats().responses, kRequests);
}

TEST(Reactor, ComputeSaturationShedsTypedAndServesSurvivorsIntact) {
  // One compute lane, queue cap 2. A handler that parks on the first
  // request makes saturation DETERMINISTIC: while it holds the lane, two
  // followers fit the queue and every later frame must shed.
  constexpr std::uint32_t kBlockMarker = 0xB10C;
  std::atomic<bool> entered{false};
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  net::ReactorOptions opts;
  opts.loops = 1;
  opts.compute_threads = 1;
  opts.compute_queue_cap = 2;
  net::Reactor reactor(opts, [&](const net::Frame& in) {
    if (net::body_u32(in.body) == kBlockMarker) {
      entered.store(true);
      released.wait();
    }
    net::Frame out = in;
    out.from = in.to;
    out.to = in.from;
    return std::vector<net::Frame>{out};
  });

  auto sock = net::TcpSocket::connect(reactor.local_addr(), 5000);
  net::FrameReader reader;
  const auto id = say_hello(sock, reader);

  net::Frame blocker;
  blocker.type = net::FrameType::kData;
  blocker.from = id;
  blocker.to = 0;
  blocker.body = net::u32_body(kBlockMarker);
  send_frame(sock, blocker);
  for (int i = 0; i < 1000 && !entered.load(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(entered.load()) << "the blocking request never reached compute";

  // 8 pipelined requests against a held lane: 2 queue, 6 shed.
  constexpr std::uint32_t kFollowers = 8;
  std::vector<std::uint8_t> burst;
  for (std::uint32_t seq = 0; seq < kFollowers; ++seq) {
    net::Frame req;
    req.type = net::FrameType::kData;
    req.from = id;
    req.to = 0;
    req.body = net::u32_body(seq);
    net::encode_frame(req, burst);
  }
  sock.write_all(burst.data(), burst.size(), 5000);

  // The shed refusals are TYPED and immediate — they flush while the lane
  // is still parked, one per frame that found the queue full.
  for (int i = 0; i < 6; ++i) {
    const auto refusal = read_frame(sock, reader);
    ASSERT_EQ(refusal.type, net::FrameType::kError);
    EXPECT_EQ(net::body_text(refusal.body), "server overloaded: request shed");
  }
  EXPECT_EQ(reactor.stats().shed, 6u);

  // Survivors are served INTACT once the lane frees: the blocker echoes
  // first, then the two queued followers in order, bit-identical.
  release.set_value();
  const auto first = read_frame(sock, reader);
  ASSERT_EQ(first.type, net::FrameType::kData);
  EXPECT_EQ(net::body_u32(first.body), kBlockMarker);
  for (std::uint32_t seq = 0; seq < 2; ++seq) {
    const auto resp = read_frame(sock, reader);
    ASSERT_EQ(resp.type, net::FrameType::kData);
    EXPECT_EQ(net::body_u32(resp.body), seq) << "surviving response corrupted";
  }
  EXPECT_EQ(reactor.stats().responses, 3u);
}

TEST(Reactor, DataBeforeHelloGetsErrorButKeepsConnection) {
  net::ReactorOptions opts;
  opts.loops = 1;
  net::Reactor reactor(opts, echo_handler());

  auto sock = net::TcpSocket::connect(reactor.local_addr(), 5000);
  net::FrameReader reader;
  net::Frame req;
  req.type = net::FrameType::kData;
  req.from = 7;
  req.body = net::u32_body(1);
  send_frame(sock, req);
  const auto err = read_frame(sock, reader);
  EXPECT_EQ(err.type, net::FrameType::kError);

  // Framing is intact, so the claim still works afterwards.
  const auto id = say_hello(sock, reader);
  EXPECT_GE(id, opts.first_client_id);
  EXPECT_EQ(reactor.stats().requests, 0u);  // never reached compute
}

// ---- eviction ------------------------------------------------------------

TEST(Reactor, SlowLorisAndSilentConnectionsAreEvicted) {
  net::ReactorOptions opts;
  opts.loops = 2;
  opts.idle_timeout_ms = 150;
  net::Reactor reactor(opts, echo_handler());
  const auto addr = reactor.local_addr();

  // Silent: connects and never sends a byte.
  auto silent = net::TcpSocket::connect(addr, 5000);
  // Slow loris: a valid claim, then half a frame header, then nothing —
  // bytes that never complete a frame are not progress.
  auto loris = net::TcpSocket::connect(addr, 5000);
  net::FrameReader loris_reader;
  (void)say_hello(loris, loris_reader);
  std::vector<std::uint8_t> half;
  net::Frame probe;
  probe.type = net::FrameType::kData;
  net::encode_frame(probe, half);
  half.resize(8);  // magic + version + type + kind + reserved, no length/crc
  loris.write_all(half.data(), half.size(), 5000);

  EXPECT_TRUE(wait_for_eof(silent, 5000)) << "silent connection never evicted";
  EXPECT_TRUE(wait_for_eof(loris, 5000)) << "slow-loris connection never evicted";
  EXPECT_TRUE(stats_settle(
      reactor, [](const net::Reactor::Stats& s) { return s.evicted_idle >= 2; }, 2000));
  EXPECT_TRUE(stats_settle(
      reactor, [](const net::Reactor::Stats& s) { return s.live == 0; }, 2000));
}

TEST(Reactor, FramingGarbageDropsTheConnectionImmediately) {
  net::ReactorOptions opts;
  opts.loops = 1;
  opts.idle_timeout_ms = 60'000;  // eviction must NOT come from the wheel
  net::Reactor reactor(opts, echo_handler());

  auto sock = net::TcpSocket::connect(reactor.local_addr(), 5000);
  std::vector<std::uint8_t> garbage(64, 0xA5);  // wrong magic
  sock.write_all(garbage.data(), garbage.size(), 5000);
  EXPECT_TRUE(wait_for_eof(sock, 5000));
}

TEST(Reactor, ByeFlushesPendingResponsesThenCloses) {
  net::ReactorOptions opts;
  opts.loops = 1;
  opts.compute_threads = 1;
  net::Reactor reactor(opts, echo_handler());

  auto sock = net::TcpSocket::connect(reactor.local_addr(), 5000);
  net::FrameReader reader;
  const auto id = say_hello(sock, reader);

  // Request and goodbye in one burst: the response must still arrive
  // (closing waits for in-flight compute + queued bytes), then EOF.
  std::vector<std::uint8_t> burst;
  net::Frame req;
  req.type = net::FrameType::kData;
  req.from = id;
  req.body = net::u32_body(99);
  net::encode_frame(req, burst);
  net::Frame bye;
  bye.type = net::FrameType::kBye;
  bye.from = id;
  net::encode_frame(bye, burst);
  sock.write_all(burst.data(), burst.size(), 5000);

  const auto resp = read_frame(sock, reader);
  EXPECT_EQ(net::body_u32(resp.body), 99u);
  EXPECT_TRUE(wait_for_eof(sock, 5000));
  EXPECT_TRUE(stats_settle(
      reactor, [](const net::Reactor::Stats& s) { return s.live == 0; }, 2000));
}

// ---- churn ---------------------------------------------------------------

TEST(Reactor, ThousandConnectionChurnIsServedAndReclaimed) {
  net::ReactorOptions opts;
  opts.loops = 2;
  opts.compute_threads = 2;
  net::Reactor reactor(opts, echo_handler());
  const auto addr = reactor.local_addr();

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 250;
  std::atomic<std::size_t> served{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        auto sock = net::TcpSocket::connect(addr, 5000);
        net::FrameReader reader;
        const auto id = say_hello(sock, reader);
        net::Frame req;
        req.type = net::FrameType::kData;
        req.from = id;
        req.body = net::u32_body(static_cast<std::uint32_t>(t * kPerThread + i));
        send_frame(sock, req);
        const auto resp = read_frame(sock, reader);
        if (resp.type == net::FrameType::kData &&
            net::body_u32(resp.body) == t * kPerThread + i)
          served.fetch_add(1, std::memory_order_relaxed);
        // Plain close (no Bye): the loop sees EOF and reclaims the slot.
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(served.load(), kThreads * kPerThread);
  const auto stats = reactor.stats();
  EXPECT_EQ(stats.accepted, kThreads * kPerThread);
  EXPECT_EQ(stats.requests, kThreads * kPerThread);
  EXPECT_EQ(stats.responses, kThreads * kPerThread);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_TRUE(stats_settle(
      reactor, [](const net::Reactor::Stats& s) { return s.live == 0; }, 10'000))
      << "closed connections were not reclaimed";
}

// ---- daemon integration: both front doors bit-identical ------------------

TEST(ReactorDaemon, FrontDoorsServeBitIdenticalValues) {
  const std::size_t k = 3;
  const std::uint64_t seed = 4242;

  // Normalized Iris, sharded for the exchange + one held-back batch.
  const Dataset raw = sap::data::make_uci("Iris", seed);
  sap::data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  const Dataset pool(raw.name(), norm.transform(raw.features()), raw.labels());
  Engine shard_eng(seed ^ 0xBEEF);
  sap::data::PartitionOptions popts;
  const auto shards = sap::data::partition(pool.slice(0, 100), k, popts, shard_eng);
  const Dataset batch = pool.slice(100, 120);

  auto sap_opts = proto::SapOptions::fast();
  sap_opts.seed = seed;
  sap_opts.compute_satisfaction = false;

  net::MinerDaemonOptions daemon_opts;
  daemon_opts.listen = {"127.0.0.1", 0};
  daemon_opts.parties = k;
  daemon_opts.seed = seed;
  daemon_opts.reactor_loops = 2;
  daemon_opts.reactor_compute_threads = 2;
  net::MinerDaemon daemon(daemon_opts);
  const auto hub_addr = daemon.local_addr();
  const auto door_addr = daemon.reactor_addr();
  auto daemon_future = std::async(std::launch::async, [&] { return daemon.run(); });

  // k parties exchange; party 0 stays connected, mines via the HUB at both
  // epochs, and holds the daemon open while the main thread works the
  // reactor door.
  std::promise<void> hub_ready;
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  proto::WireMiningResponse hub_epoch1, hub_epoch2;
  std::vector<std::thread> parties;
  for (std::size_t i = 0; i < k; ++i) {
    parties.emplace_back([&, i] {
      net::PartyClientOptions party_opts;
      party_opts.connect = hub_addr;
      party_opts.index = i;
      party_opts.parties = k;
      party_opts.sap = sap_opts;
      net::PartyClient party(shards[i], party_opts);
      (void)party.run_exchange();
      if (i == 0) {
        hub_epoch1 = party.mine_named("nb-train-accuracy");
        hub_ready.set_value();
        released.wait();
        hub_epoch2 = party.mine_named("nb-train-accuracy");
      }
      party.finish();
    });
  }
  hub_ready.get_future().wait();

  // Epoch 1 (the freshly unified pool): reactor door == hub == engine.
  const auto direct_epoch1 = daemon.engine().run({"nb-train-accuracy", {}});
  net::ServeClient door(door_addr, seed, k);
  EXPECT_GE(door.id(), net::ReactorOptions{}.first_client_id);
  const auto door_epoch1 = door.mine_named("nb-train-accuracy");
  EXPECT_EQ(door_epoch1.pool_epoch, 1u);
  EXPECT_EQ(door_epoch1.values, hub_epoch1.values);
  EXPECT_EQ(door_epoch1.values, direct_epoch1.values);
  EXPECT_EQ(hub_epoch1.pool_epoch, 1u);

  // An unknown job is a TYPED refusal — kServeError{kBadRequest}, raised
  // client-side as net::ServeError — not a disconnect, and not the old
  // silent empty-values response a client could not tell from a jobless
  // report. kBadRequest is definitive: a cluster router must not burn a
  // replica failover on it.
  try {
    (void)door.mine_named("no-such-job");
    ADD_FAILURE() << "expected net::ServeError for an unknown job";
  } catch (const net::ServeError& e) {
    EXPECT_EQ(e.code(), proto::ServeErrorCode::kBadRequest);
    EXPECT_NE(std::string(e.what()).find("no-such-job"), std::string::npos);
  }

  // Contribute THROUGH THE REACTOR: replicate party 0's side of the math
  // (same derived engine, same LocalOptimize, perturb with its G_0) so the
  // wire is valid for the adaptor the exchange installed.
  const auto seeds = proto::logic::derive_session_seeds(seed, k);
  Engine party_eng = seeds.provider_eng[0];
  const auto x0 = shards[0].features_T();
  const auto local =
      proto::logic::optimize_local(x0, shards[0].dims(), sap_opts, party_eng);
  const auto y = local.g.apply(batch.features_T(), party_eng);
  const auto receipt =
      door.contribute_wire(proto::encode_contribution(local.nonce, y, batch.labels()));
  EXPECT_EQ(receipt.pool_epoch, 2u);
  EXPECT_EQ(receipt.pool_records, 100u + batch.size());

  // Epoch 2 (after the reactor-door contribution): all three again.
  const auto direct_epoch2 = daemon.engine().run({"nb-train-accuracy", {}});
  const auto door_epoch2 = door.mine_named("nb-train-accuracy");
  EXPECT_EQ(door_epoch2.pool_epoch, 2u);
  EXPECT_EQ(door_epoch2.values, direct_epoch2.values);
  door.bye();

  release.set_value();
  for (auto& t : parties) t.join();
  EXPECT_EQ(hub_epoch2.pool_epoch, 2u);
  EXPECT_EQ(hub_epoch2.values, door_epoch2.values);

  const auto summary = daemon_future.get();
  EXPECT_EQ(summary.pool_epoch, 2u);
  EXPECT_EQ(summary.pool_records, 100u + batch.size());
  EXPECT_EQ(summary.contributions, 1u);        // the reactor-door one
  EXPECT_EQ(summary.requests_served, 5u);      // 2 hub + 3 door (one refused)
  ASSERT_NE(daemon.reactor(), nullptr);
  const auto stats = daemon.reactor()->stats();
  EXPECT_EQ(stats.requests, 4u);  // mine, refused mine, contribute, mine
  EXPECT_EQ(stats.live, 0u);      // stop() closed everything
}

// ---- FrameReader buffer hygiene ------------------------------------------

TEST(FrameReaderHygiene, CapacityStaysFlatAcrossTenThousandFrames) {
  net::Frame frame;
  frame.type = net::FrameType::kData;
  frame.from = 1;
  frame.to = 2;
  frame.body.assign(2048, 0x5C);
  std::vector<std::uint8_t> wire;
  net::encode_frame(frame, wire);

  // Feed a long stream in fixed 777-byte slices so frame boundaries fall
  // mid-chunk — the worst case for a naive always-growing buffer.
  net::FrameReader reader;
  std::vector<std::uint8_t> staging;
  constexpr std::size_t kChunk = 777;
  constexpr std::size_t kFrames = 10'000;
  std::size_t decoded = 0;
  std::size_t settled_capacity = 0;
  for (std::size_t f = 0; f < kFrames; ++f) {
    staging.insert(staging.end(), wire.begin(), wire.end());
    while (staging.size() >= kChunk) {
      reader.feed(staging.data(), kChunk);
      staging.erase(staging.begin(), staging.begin() + kChunk);
      net::Frame out;
      while (reader.next(out)) {
        ++decoded;
        EXPECT_EQ(out.body.size(), frame.body.size());
      }
    }
    if (f == 1000) settled_capacity = reader.capacity();
    if (f > 1000) {
      ASSERT_EQ(reader.capacity(), settled_capacity) << "buffer grew at frame " << f;
    }
  }
  reader.feed(staging.data(), staging.size());
  net::Frame out;
  while (reader.next(out)) ++decoded;
  EXPECT_EQ(decoded, kFrames);
  EXPECT_LE(settled_capacity, (128u << 10) + 4096u);  // compaction bound holds
}

}  // namespace
