// Unit tests for sap::common (error handling, logging, table rendering, and
// the annotated locking primitives).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/mutex.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"

namespace {

TEST(Error, RequireThrowsWithLocation) {
  try {
    SAP_REQUIRE(false, "boom");
    FAIL() << "SAP_REQUIRE(false) must throw";
  } catch (const sap::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("boom"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

TEST(Error, RequirePassesOnTrue) {
  EXPECT_NO_THROW(SAP_REQUIRE(1 + 1 == 2, "never"));
}

TEST(Error, FailAlwaysThrows) {
  EXPECT_THROW(SAP_FAIL("unconditional"), sap::Error);
}

TEST(Error, IsRuntimeError) {
  EXPECT_THROW(SAP_FAIL("x"), std::runtime_error);
}

TEST(Logging, LevelRoundTrip) {
  const auto prev = sap::log::level();
  sap::log::set_level(sap::log::Level::kDebug);
  EXPECT_EQ(sap::log::level(), sap::log::Level::kDebug);
  sap::log::set_level(prev);
}

TEST(Logging, SuppressedBelowThresholdDoesNotCrash) {
  const auto prev = sap::log::level();
  sap::log::set_level(sap::log::Level::kOff);
  sap::log::error("must be swallowed");
  sap::log::debug("must be swallowed");
  sap::log::set_level(prev);
}

TEST(Stopwatch, MeasuresNonNegativeMonotonicTime) {
  sap::Stopwatch sw;
  const double a = sw.seconds();
  const double b = sw.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  sw.reset();
  EXPECT_GE(sw.millis(), 0.0);
}

TEST(Table, RendersHeaderAndRows) {
  sap::Table t({"name", "value"});
  t.add_row({"alpha", "1.25"});
  t.add_row({"beta", "-3.5"});
  const std::string out = t.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-3.5"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumericColumnsRightAligned) {
  sap::Table t({"v"});
  t.add_row({"1.0"});
  t.add_row({"10.0"});
  const std::string out = t.str();
  // "1.0" padded to the width of "10.0" → leading space.
  EXPECT_NE(out.find(" 1.0"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  sap::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), sap::Error);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(sap::Table t({}), sap::Error);
}

TEST(Table, NumFormatsFixedPrecision) {
  EXPECT_EQ(sap::Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(sap::Table::num(-0.5, 3), "-0.500");
  EXPECT_EQ(sap::Table::num(2.0, 0), "2");
}

// ---- annotated locking primitives (common/mutex.hpp) ---------------------
//
// Regression coverage for the std::mutex → sap::Mutex conversion: the
// wrappers must preserve exclusion, the unlock()/lock() hand-off cycle the
// worker loops rely on, and wait_until's timeout contract (false exactly on
// deadline expiry) that the TCP handshake/receive deadline loops depend on.

TEST(Mutex, ExcludesConcurrentIncrements) {
  sap::Mutex mu;
  int counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        sap::MutexLock lock(mu);
        ++counter;
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 40000);
}

TEST(Mutex, TryLockReportsContention) {
  sap::Mutex mu;
  {
    sap::MutexLock lock(mu);
    EXPECT_FALSE(mu.try_lock());  // held by `lock`
  }
  ASSERT_TRUE(mu.try_lock());  // free again after the guard released
  mu.unlock();                 // sap-lint: allow(raii-locking) -- releasing the try_lock taken one line up to probe availability
}

TEST(MutexLock, UnlockRelockCycleKeepsExclusion) {
  // The worker-loop hand-off pattern: release around the work item, then
  // re-acquire. After lock() the guard must hold exclusion again.
  sap::Mutex mu;
  sap::MutexLock lock(mu);
  lock.unlock();
  {
    sap::MutexLock other(mu);  // acquirable while released
  }
  lock.lock();
  EXPECT_FALSE(mu.try_lock());  // re-held: others are excluded again
}

TEST(CondVar, WaitWakesOnNotify) {
  sap::Mutex mu;
  sap::CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    sap::MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    sap::MutexLock lock(mu);
    while (!ready) cv.wait(lock);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVar, WaitUntilReturnsFalseOnExpiry) {
  sap::Mutex mu;
  sap::CondVar cv;
  sap::MutexLock lock(mu);
  const auto deadline = sap::deadline_after_ms(20);
  bool awake = true;
  // Nobody notifies: the loop must terminate via the false return, exactly
  // the give-up path of the transport deadline loops.
  while (awake) awake = cv.wait_until(lock, deadline);
  EXPECT_FALSE(awake);
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
}

TEST(CondVar, WaitUntilDeliversBeforeDeadline) {
  sap::Mutex mu;
  sap::CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    sap::MutexLock lock(mu);
    ready = true;
    cv.notify_all();
  });
  bool timed_out = false;
  {
    sap::MutexLock lock(mu);
    const auto deadline = sap::deadline_after_ms(60000);  // far future
    bool awake = true;
    while (awake && !ready) awake = cv.wait_until(lock, deadline);
    timed_out = !awake;
    EXPECT_TRUE(ready);
  }
  EXPECT_FALSE(timed_out);
  producer.join();
}

TEST(Deadline, IsInTheFutureByTheRequestedAmount) {
  const auto before = std::chrono::steady_clock::now();
  const auto dl = sap::deadline_after_ms(1000);
  EXPECT_GE(dl - before, std::chrono::milliseconds(999));
}

}  // namespace
