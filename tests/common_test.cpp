// Unit tests for sap::common (error handling, logging, table rendering).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"

namespace {

TEST(Error, RequireThrowsWithLocation) {
  try {
    SAP_REQUIRE(false, "boom");
    FAIL() << "SAP_REQUIRE(false) must throw";
  } catch (const sap::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("boom"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

TEST(Error, RequirePassesOnTrue) {
  EXPECT_NO_THROW(SAP_REQUIRE(1 + 1 == 2, "never"));
}

TEST(Error, FailAlwaysThrows) {
  EXPECT_THROW(SAP_FAIL("unconditional"), sap::Error);
}

TEST(Error, IsRuntimeError) {
  EXPECT_THROW(SAP_FAIL("x"), std::runtime_error);
}

TEST(Logging, LevelRoundTrip) {
  const auto prev = sap::log::level();
  sap::log::set_level(sap::log::Level::kDebug);
  EXPECT_EQ(sap::log::level(), sap::log::Level::kDebug);
  sap::log::set_level(prev);
}

TEST(Logging, SuppressedBelowThresholdDoesNotCrash) {
  const auto prev = sap::log::level();
  sap::log::set_level(sap::log::Level::kOff);
  sap::log::error("must be swallowed");
  sap::log::debug("must be swallowed");
  sap::log::set_level(prev);
}

TEST(Stopwatch, MeasuresNonNegativeMonotonicTime) {
  sap::Stopwatch sw;
  const double a = sw.seconds();
  const double b = sw.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  sw.reset();
  EXPECT_GE(sw.millis(), 0.0);
}

TEST(Table, RendersHeaderAndRows) {
  sap::Table t({"name", "value"});
  t.add_row({"alpha", "1.25"});
  t.add_row({"beta", "-3.5"});
  const std::string out = t.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-3.5"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumericColumnsRightAligned) {
  sap::Table t({"v"});
  t.add_row({"1.0"});
  t.add_row({"10.0"});
  const std::string out = t.str();
  // "1.0" padded to the width of "10.0" → leading space.
  EXPECT_NE(out.find(" 1.0"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  sap::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), sap::Error);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(sap::Table t({}), sap::Error);
}

TEST(Table, NumFormatsFixedPrecision) {
  EXPECT_EQ(sap::Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(sap::Table::num(-0.5, 3), "-0.500");
  EXPECT_EQ(sap::Table::num(2.0, 0), "2");
}

}  // namespace
