// Fixture: R5/bench-hygiene — a bench writing its own results file instead of
// going through bench_util. Lint input only.
#include <fstream>

void emit(double millis) {
  std::ofstream out("BENCH_rogue.json");  // line 6: R5
  out << "{\"millis\": " << millis << "}\n";
}
