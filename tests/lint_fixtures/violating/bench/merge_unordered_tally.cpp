// Fixture: R2/determinism on the shard-merge path OUTSIDE src/protocol and
// src/net — the file names ShardRouter in code, so the strict unordered ban
// applies to it wherever it lives. Lint input only.
#include <map>
#include <string>
#include <vector>

namespace sap::net { class ShardRouter; }

std::vector<double> gather_reports(sap::net::ShardRouter& router);

std::unordered_map<int, std::vector<double>> partial_cache;  // line 12: R2
