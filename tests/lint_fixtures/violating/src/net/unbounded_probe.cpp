// R7 fixture: an unconditional probe loop issuing serving-door requests
// with no attempt budget and no deadline — a dead peer hangs the caller
// forever. `break` on success is not a bound: the failure path never exits.
#include <string>

struct Client {
  bool mine_named(const std::string& job);
};

void probe_until_up(Client& client) {
  for (;;) {
    if (client.mine_named("record-count")) break;
  }
}
