// Fixture: R6 — a numeric kernel that records metrics and times itself.
#include "common/stopwatch.hpp"
#include "obs/metrics.hpp"

namespace fixture {
double step(double x) {
  sap::Stopwatch sw;
  static sap::obs::Counter evals;
  evals.increment();
  return x * 0.5 + sw.millis() * 0.0;
}
}  // namespace fixture
