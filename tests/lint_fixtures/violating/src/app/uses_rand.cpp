// Fixture: every R1/rng-discipline trigger. NOT compiled — lint input only.
#include <chrono>
#include <cstdlib>
#include <random>

int draw() {
  std::random_device rd;                                  // line 7: R1
  std::srand(42);                                         // line 8: R1
  std::mt19937 eng(rd());                                 // line 9: R1
  eng.seed(std::chrono::steady_clock::now().time_since_epoch().count());  // line 10: R1
  return std::rand() + static_cast<int>(eng());           // line 11: R1
}
