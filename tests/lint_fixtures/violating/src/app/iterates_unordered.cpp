// Fixture: R2/determinism outside protocol/net — range-for over a container
// this file declared unordered. Lint input only.
#include <string>
#include <unordered_set>

std::string join() {
  std::unordered_set<std::string> names = {"a", "b", "c"};
  std::string out;
  for (const auto& name : names) out += name;  // line 9: R2
  return out;
}
