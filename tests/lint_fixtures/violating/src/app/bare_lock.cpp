// Fixture: both R4/raii-locking sub-checks. Lint input only.
#include <mutex>

struct Counter {
  std::mutex mu;  // line 5: R4 (raw std::mutex outside src/common/)
  int value = 0;

  void bump() {
    mu.lock();    // line 9: R4 (bare lock on a declared mutex)
    ++value;
    mu.unlock();  // line 11: R4 (bare unlock)
  }
};
