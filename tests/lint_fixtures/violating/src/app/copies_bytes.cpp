// Fixture: R3/codec-safety outside the codec boundary. Lint input only.
#include <cstdint>
#include <cstring>

double peek(const unsigned char* bytes) {
  double value = 0.0;
  std::memcpy(&value, bytes, sizeof(value));               // line 7: R3
  const auto* words = reinterpret_cast<const std::uint32_t*>(bytes);  // line 8: R3
  return value + static_cast<double>(words[0]);
}
