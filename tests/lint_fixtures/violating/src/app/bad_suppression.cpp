// Fixture: suppression hygiene. An allow() with no written reason is its own
// diagnostic AND waives nothing; an unknown rule name is flagged too. Lint
// input only.
#include <cstring>

void copy_unjustified(char* dst, const char* src) {
  // sap-lint: allow(R3)
  std::memcpy(dst, src, 4);  // line 8: R3 still fires (waiver was invalid)
}

void copy_unknown_rule(char* dst, const char* src) {
  std::memcpy(dst, src, 4);  // sap-lint: allow(no-such-rule) -- typo'd rule
}
