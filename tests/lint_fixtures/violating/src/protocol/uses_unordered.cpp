// Fixture: R2/determinism inside a digest-adjacent subsystem. Lint input only.
#include <string>
#include <unordered_map>

double tally(const std::unordered_map<std::string, double>& scores) {  // line 5: R2
  double sum = 0.0;
  for (const auto& [name, score] : scores) sum += score;
  return sum;
}
