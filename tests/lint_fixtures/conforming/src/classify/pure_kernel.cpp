// Fixture: R6 — a numeric kernel doing only math: no metrics, no timers.
#include <cmath>

namespace fixture {
double rbf(double a, double b, double gamma) {
  const double d = a - b;
  return std::exp(-gamma * d * d);
}
}  // namespace fixture
