// Fixture: R2-conforming use of an unordered container outside protocol/net —
// point lookups are fine; iteration happens over a sorted snapshot. Lint
// input only.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

double lookup(const std::unordered_map<std::string, double>& scores,
              const std::string& key) {
  const auto it = scores.find(key);  // point lookup: order never observed
  return it == scores.end() ? 0.0 : it->second;
}

std::vector<std::string> sorted_keys(
    const std::unordered_map<std::string, double>& scores) {
  std::vector<std::string> keys;
  keys.reserve(scores.size());
  for (auto it = scores.begin(); it != scores.end(); ++it) keys.push_back(it->first);
  std::sort(keys.begin(), keys.end());
  for (const auto& key : keys) (void)key;  // iterating the SORTED snapshot
  return keys;
}
