// Fixture: R4-conforming locking — sap::Mutex held via RAII MutexLock; no
// bare lock()/unlock(), no raw std::mutex. Lint input only (does not
// include the real header so the fixture stays self-contained).
namespace sap {
class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex&) {}
};
}  // namespace sap

struct Counter {
  sap::Mutex mu;
  int value = 0;

  void bump() {
    sap::MutexLock lock(mu);
    ++value;
  }
};
