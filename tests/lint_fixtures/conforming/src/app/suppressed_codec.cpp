// Fixture: reasoned suppressions waive a finding — trailing form and
// line-above form both. Lint input only.
#include <cstring>

void copy_trailing(char* dst, const char* src) {
  std::memcpy(dst, src, 4);  // sap-lint: allow(R3) -- fixture: kernel-packed header, no typed accessor exists
}

void copy_line_above(char* dst, const char* src) {
  // sap-lint: allow(codec-safety) -- fixture: slug-named waiver, covers the next code line
  std::memcpy(dst, src, 4);
}
