// Fixture: R1 scope check — src/rng/ may wrap entropy sources; the rest of
// the tree must go through it. Lint input only.
#include <random>

unsigned hardware_entropy() {
  std::random_device rd;  // allowed here: this IS the rng subsystem
  return rd();
}
