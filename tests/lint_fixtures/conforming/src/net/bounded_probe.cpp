// R7 fixture: the same probe shape, bounded both ways the rule accepts —
// an attempt budget in the loop header, and a deadline check in the body of
// an unconditional loop. A dead peer becomes a typed failure, not a hang.
#include <string>

struct Client {
  bool mine_named(const std::string& job);
};

bool probe_with_budget(Client& client) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    if (client.mine_named("record-count")) return true;
  }
  return false;
}

bool probe_with_deadline(Client& client, long deadline_ms) {
  long waited_ms = 0;
  for (;;) {
    if (client.mine_named("record-count")) return true;
    waited_ms += 5;
    if (waited_ms >= deadline_ms) return false;
  }
}
