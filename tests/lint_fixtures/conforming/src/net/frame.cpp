// Fixture: R3 scope check — src/net/frame.* is the codec boundary where byte
// reinterpretation is legitimate. Lint input only.
#include <cstdint>
#include <cstring>

std::uint64_t load_u64(const unsigned char* bytes) {
  std::uint64_t value = 0;
  std::memcpy(&value, bytes, sizeof(value));  // allowed here: codec boundary
  return value;
}
