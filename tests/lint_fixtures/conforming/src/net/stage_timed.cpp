// Fixture: R6 — instrumentation at a serving-stage boundary (src/net), where
// it belongs: the daemon times the stage and records into an obs histogram.
#include "common/stopwatch.hpp"
#include "obs/metrics.hpp"

namespace fixture {
double serve_stage(sap::obs::Histogram& hist) {
  sap::Stopwatch sw;
  const double ms = sw.millis();
  hist.record(ms);
  return ms;
}
}  // namespace fixture
