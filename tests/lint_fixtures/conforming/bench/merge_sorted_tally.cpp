// Fixture: R2-conforming shard-merge helper — on the merge path (it names
// merge_partials), but every per-shard partial lands in an ordered std::map,
// so the merged report cannot depend on hash order. Lint input only.
#include <map>
#include <vector>

std::map<int, std::vector<double>> partials_by_shard;

std::vector<double> merge_partials(const std::vector<std::vector<double>>& parts);
