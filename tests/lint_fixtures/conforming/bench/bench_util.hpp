// Fixture: R5 scope check — bench_util.* is the single sanctioned emitter of
// BENCH_*.json files. Lint input only.
#pragma once
#include <fstream>
#include <string>

inline void write_json(const std::string& path, const std::string& body) {
  std::ofstream out(path);  // allowed here: THE emitter every bench routes through
  out << body;
}
