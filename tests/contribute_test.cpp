// Protocol-level tests for the Contribute phase: streaming party
// contributions into the live unified pool by reusing the space adaptors
// negotiated in the initial exchange (no re-run of LocalOptimize/Exchange).
//
// Every end-to-end test is parameterized over both transport backends: the
// phase must behave identically — same acceptances, same rejections (an
// undeliverable contribution must fail fast on the threaded backend via
// starvation detection, not hang), and bit-identical pools.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>

#include "common/error.hpp"
#include "data/normalize.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "protocol/session.hpp"

namespace {

using sap::data::Dataset;
using sap::linalg::Matrix;
using sap::rng::Engine;
namespace proto = sap::proto;

/// Normalized Iris pool: the first 100 records become the k provider shards
/// of the initial exchange; the last 50 are held back as the stream that
/// arrives later through Contribute.
struct StreamSetup {
  std::vector<Dataset> shards;
  Dataset stream;
};

StreamSetup stream_setup(std::size_t k, std::uint64_t seed) {
  const Dataset raw = sap::data::make_uci("Iris", seed);
  sap::data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  const Dataset pool(raw.name(), norm.transform(raw.features()), raw.labels());
  Engine eng(seed ^ 0xBEEF);
  sap::data::PartitionOptions opts;
  StreamSetup setup;
  setup.shards = sap::data::partition(pool.slice(0, 100), k, opts, eng);
  setup.stream = pool.slice(100, 150);
  return setup;
}

proto::SapOptions fast_opts(std::uint64_t seed, proto::TransportKind transport) {
  auto opts = proto::SapOptions::fast();
  opts.seed = seed;
  opts.compute_satisfaction = false;
  opts.transport = transport;
  return opts;
}

std::string transport_label(const ::testing::TestParamInfo<proto::TransportKind>& info) {
  return info.param == proto::TransportKind::kSimulated ? "Simulated" : "ThreadedLocal";
}

class Contribute : public ::testing::TestWithParam<proto::TransportKind> {};

TEST_P(Contribute, GrowsThePoolWithoutRedoingTheExchange) {
  auto setup = stream_setup(4, 301);
  proto::SapSession session(std::move(setup.shards), fast_opts(301, GetParam()));
  auto& engine = session.engine();
  EXPECT_EQ(engine.pool_view().data->size(), 100u);
  const std::size_t exchange_messages = session.transport().trace().size();

  const auto receipt = session.contribute(0, setup.stream.slice(0, 20));
  EXPECT_EQ(receipt.pool_epoch, 2u);
  EXPECT_EQ(receipt.pool_records, 120u);
  EXPECT_EQ(engine.pool_view().data->size(), 120u);
  // Exactly ONE new message: the kContribution itself — no new exchange.
  EXPECT_EQ(session.transport().trace().size(), exchange_messages + 1);
  EXPECT_EQ(session.transport().count_received(
                static_cast<proto::PartyId>(session.provider_count()),
                proto::PayloadKind::kContribution),
            1u);

  // Every provider can contribute, the coordinator included.
  const auto second = session.contribute(3, setup.stream.slice(20, 35));
  EXPECT_EQ(second.pool_epoch, 3u);
  EXPECT_EQ(second.pool_records, 135u);

  // Mining serves the grown pool.
  const auto count = engine.run({"record-count", {}});
  EXPECT_EQ(count.values, std::vector<double>{135.0});
  EXPECT_EQ(count.pool_epoch, 3u);
}

TEST_P(Contribute, NoiselessContributionLandsExactlyInTheTargetSpace) {
  // With sigma = 0 the whole pipeline is exact algebra: the appended records
  // must equal the batch mapped straight into the target space G_t — the
  // utility-preservation guarantee of adaptor reuse.
  auto setup = stream_setup(4, 302);
  auto opts = fast_opts(302, GetParam());
  opts.noise_sigma = 0.0;
  proto::SapSession session(std::move(setup.shards), opts);
  const auto result = session.mine();

  const Dataset batch = setup.stream.slice(0, 10);
  (void)session.contribute(1, batch);
  const auto view = session.engine().pool_view();
  ASSERT_EQ(view.data->size(), 110u);
  const Matrix expected = result.target_space.apply_noiseless(batch.features_T());
  for (std::size_t j = 0; j < batch.size(); ++j) {
    const auto got = view.data->record(100 + j);
    for (std::size_t i = 0; i < view.data->dims(); ++i)
      EXPECT_NEAR(got[i], expected(i, j), 1e-9) << "record " << j << " dim " << i;
    EXPECT_EQ(view.data->label(100 + j), batch.label(j));
  }
}

TEST_P(Contribute, UnknownContributorIsRejectedAndThePoolUntouched) {
  auto setup = stream_setup(4, 303);
  proto::SapSession session(std::move(setup.shards), fast_opts(303, GetParam()));
  (void)session.engine();

  const Dataset batch = setup.stream.slice(0, 10);
  Engine eng(1);
  const Matrix y = Matrix::generate(batch.dims(), batch.size(), [&] { return eng.uniform(); });
  try {
    (void)session.contribute_raw(0, /*nonce=*/0xDEAD, y, batch.labels());
    FAIL() << "a nonce without a negotiated adaptor must be rejected";
  } catch (const sap::Error& e) {
    EXPECT_NE(std::string(e.what()).find("unknown party"), std::string::npos);
  }
  EXPECT_EQ(session.engine().pool_view().data->size(), 100u);
  EXPECT_EQ(session.engine().pool_epoch(), 1u);

  // The rejection is not poisoning: a legitimate contribution still lands.
  const auto receipt = session.contribute(2, batch);
  EXPECT_EQ(receipt.pool_records, 110u);
}

TEST_P(Contribute, DimensionMismatchedBatchIsRejected) {
  auto setup = stream_setup(4, 304);
  proto::SapSession session(std::move(setup.shards), fast_opts(304, GetParam()));
  (void)session.engine();

  // Session-side validation rejects a malformed original-space batch...
  sap::data::SyntheticSpec wide;
  wide.name = "wide";
  wide.rows = 10;
  wide.dims = 7;
  const Dataset bad = sap::data::make_synthetic(wide, 5);
  EXPECT_THROW((void)session.contribute(0, bad), sap::Error);

  // ...and the MINER rejects a wire-level batch whose dimensionality does
  // not match the negotiated space, even under a VALID nonce.
  Engine eng(2);
  const Matrix y = Matrix::generate(7, 10, [&] { return eng.uniform(); });
  const std::vector<int> labels(10, 0);
  try {
    (void)session.contribute_raw(0, session.provider_nonce(0), y, labels);
    FAIL() << "dimension-mismatched wire batch must be rejected by the miner";
  } catch (const sap::Error& e) {
    EXPECT_NE(std::string(e.what()).find("dimension mismatch"), std::string::npos);
  }
  EXPECT_EQ(session.engine().pool_view().data->size(), 100u);
}

TEST_P(Contribute, DroppedContributionIsDetectedNotHung) {
  // The transport drops the contribution: the miner must fail fast — on the
  // threaded backend via starvation detection (all workers blocked or done,
  // no mail can arrive), not a timeout or a hang — and the pool stays put.
  auto setup = stream_setup(4, 305);
  proto::SapSession session(std::move(setup.shards), fast_opts(305, GetParam()));
  (void)session.engine();

  auto dropped = std::make_shared<std::atomic<bool>>(false);
  session.inject_faults([dropped](proto::PartyId, proto::PartyId, proto::PayloadKind kind) {
    if (kind != proto::PayloadKind::kContribution) return false;
    return !dropped->exchange(true);
  });
  EXPECT_THROW((void)session.contribute(1, setup.stream.slice(0, 10)), sap::Error);
  EXPECT_TRUE(dropped->load());
  EXPECT_GE(session.transport().dropped_count(), 1u);
  EXPECT_EQ(session.engine().pool_view().data->size(), 100u);

  // Exactly-once drop filter: the retry goes through — service recovered.
  const auto receipt = session.contribute(1, setup.stream.slice(0, 10));
  EXPECT_EQ(receipt.pool_records, 110u);
}

TEST_P(Contribute, RejectedBeforeTheExchangeCompletes) {
  auto setup = stream_setup(4, 306);
  proto::SapSession session(std::move(setup.shards), fast_opts(306, GetParam()));
  // contribute() implicitly completes the phases (like engine()); but a
  // session poisoned mid-exchange must refuse to ingest.
  session.inject_faults([](proto::PartyId, proto::PartyId, proto::PayloadKind kind) {
    return kind == proto::PayloadKind::kSpaceAdaptor;
  });
  EXPECT_THROW((void)session.contribute(0, setup.stream.slice(0, 10)), sap::Error);
  EXPECT_TRUE(session.failed());
  EXPECT_THROW((void)session.contribute(0, setup.stream.slice(0, 10)), sap::Error);
}

TEST_P(Contribute, InvalidArgumentsRejectedUpFront) {
  auto setup = stream_setup(3, 307);
  proto::SapSession session(std::move(setup.shards), fast_opts(307, GetParam()));
  EXPECT_THROW((void)session.contribute(9, setup.stream.slice(0, 10)), sap::Error);
  EXPECT_THROW((void)session.contribute(0, setup.stream.slice(0, 0)), sap::Error);
  // Nothing ran: the exchange was never started by a failed validation.
  EXPECT_EQ(session.phase(), proto::SessionPhase::kLocalOptimize);
}

INSTANTIATE_TEST_SUITE_P(Backends, Contribute,
                         ::testing::Values(proto::TransportKind::kSimulated,
                                           proto::TransportKind::kThreadedLocal),
                         transport_label);

// ------------------------------------------------------------ replay determinism

TEST(ContributeReplay, IdenticalSequenceYieldsBitIdenticalPoolsAcrossTransports) {
  // Replaying the same contribution sequence over both backends must
  // produce byte-identical pools and epochs — pool mutations are
  // epoch-ordered and independent of delivery scheduling.
  const auto run_replay = [](proto::TransportKind transport) {
    auto setup = stream_setup(4, 308);
    proto::SapSession session(std::move(setup.shards), fast_opts(308, transport));
    (void)session.engine();
    (void)session.contribute(0, setup.stream.slice(0, 15));
    (void)session.contribute(3, setup.stream.slice(15, 30));
    (void)session.contribute(1, setup.stream.slice(30, 50));
    return session.engine().pool_view();
  };
  const auto sim = run_replay(proto::TransportKind::kSimulated);
  const auto threaded = run_replay(proto::TransportKind::kThreadedLocal);
  EXPECT_EQ(sim.epoch, 4u);
  EXPECT_EQ(threaded.epoch, 4u);
  ASSERT_EQ(sim.data->size(), threaded.data->size());
  EXPECT_TRUE(sim.data->features().approx_equal(threaded.data->features(), 0.0));
  EXPECT_EQ(sim.data->labels(), threaded.data->labels());
}

TEST(ContributeReplay, MineReflectsContributionsInItsResult) {
  auto setup = stream_setup(4, 309);
  proto::SapSession session(std::move(setup.shards),
                            fast_opts(309, proto::TransportKind::kSimulated));
  const auto before = session.mine();
  EXPECT_EQ(before.unified.size(), 100u);
  (void)session.contribute(2, setup.stream.slice(0, 30));
  const auto after = session.mine_named("record-count");
  EXPECT_EQ(after.unified.size(), 130u);
}

}  // namespace
