// Tests for sap::proto: message codecs, the Transport seam (encrypted
// SimulatedNetwork + concurrent ThreadedLocalTransport), risk formulas, and
// the SapSession phase machine's information-flow invariants (DESIGN.md §4).
//
// Every end-to-end SAP test is parameterized over both transport backends:
// the protocol must behave identically — same invariants, same failures,
// and (thanks to canonical pooling) bit-identical unified output.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <set>

#include "common/error.hpp"
#include "data/normalize.hpp"
#include "golden.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "linalg/orthogonal.hpp"
#include "protocol/adversary.hpp"
#include "protocol/baseline.hpp"
#include "protocol/message.hpp"
#include "protocol/network.hpp"
#include "protocol/risk.hpp"
#include "protocol/session.hpp"
#include "protocol/threaded_transport.hpp"

namespace {

using sap::data::Dataset;
using sap::linalg::Matrix;
using sap::linalg::Vector;
using sap::rng::Engine;
namespace proto = sap::proto;

/// Normalized pool split into k provider datasets.
std::vector<Dataset> provider_split(const std::string& dataset, std::size_t k,
                                    std::uint64_t seed) {
  const Dataset pool = sap::data::make_uci(dataset, seed);
  sap::data::MinMaxNormalizer norm;
  norm.fit(pool.features());
  const Dataset normalized(pool.name(), norm.transform(pool.features()), pool.labels());
  Engine eng(seed ^ 0xBEEF);
  sap::data::PartitionOptions opts;
  return sap::data::partition(normalized, k, opts, eng);
}

std::string transport_label(const ::testing::TestParamInfo<proto::TransportKind>& info) {
  return info.param == proto::TransportKind::kSimulated ? "Simulated" : "ThreadedLocal";
}

// ------------------------------------------------------------ envelopes

TEST(Envelope, RoundTripWithCorrectKey) {
  const std::vector<double> plain{1.0, -2.5, 3.25, 0.0};
  const proto::EncryptedEnvelope env(plain, 0xABCD);
  EXPECT_EQ(env.open(0xABCD), plain);
}

TEST(Envelope, WrongKeyDetected) {
  const std::vector<double> plain{1.0, 2.0};
  const proto::EncryptedEnvelope env(plain, 111);
  EXPECT_THROW(env.open(222), sap::Error);
}

TEST(Envelope, CiphertextDiffersFromPlaintext) {
  const std::vector<double> plain{42.0, 43.0, 44.0};
  const proto::EncryptedEnvelope env(plain, 7);
  ASSERT_EQ(env.ciphertext().size(), plain.size());
  // At least one word must differ (overwhelmingly all of them).
  bool any_diff = false;
  for (std::size_t i = 0; i < plain.size(); ++i) {
    if (env.ciphertext()[i] != std::bit_cast<std::uint64_t>(plain[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

// ------------------------------------------------------------ codecs

TEST(Codec, DatasetRoundTrip) {
  Engine eng(1);
  Matrix f = Matrix::generate(3, 7, [&] { return eng.normal(); });
  const std::vector<int> labels{0, 1, 2, 0, 1, 2, 0};
  const auto wire = proto::encode_dataset(f, labels);
  const auto back = proto::decode_dataset(wire);
  EXPECT_TRUE(back.features.approx_equal(f, 0.0));
  EXPECT_EQ(back.labels, labels);
}

TEST(Codec, DatasetMalformedRejected) {
  EXPECT_THROW(proto::decode_dataset(std::vector<double>{3.0}), sap::Error);
  EXPECT_THROW(proto::decode_dataset(std::vector<double>{2.0, 2.0, 1.0}), sap::Error);
}

TEST(Codec, TargetSpaceRoundTrip) {
  Engine eng(2);
  const Matrix r = sap::linalg::random_orthogonal(4, eng);
  const Vector t{0.1, -0.2, 0.3, -0.4};
  const auto wire = proto::encode_target_space(r, t);
  const auto back = proto::decode_target_space(wire);
  EXPECT_TRUE(back.r.approx_equal(r, 0.0));
  EXPECT_EQ(back.t, t);
}

TEST(Codec, RoutingRoundTrip) {
  const auto notice = proto::decode_routing(proto::encode_routing(7, 2));
  EXPECT_EQ(notice.receiver, 7u);
  EXPECT_EQ(notice.inbound, 2u);
  EXPECT_THROW(proto::decode_routing(std::vector<double>{1.0}), sap::Error);
  EXPECT_THROW(proto::decode_routing(std::vector<double>{1.0, 2.0, 3.0}), sap::Error);
}

TEST(Codec, PayloadKindNamesAreDistinct) {
  std::set<std::string> names;
  for (auto kind : {proto::PayloadKind::kTargetSpace, proto::PayloadKind::kRoutingNotice,
                    proto::PayloadKind::kPerturbedData, proto::PayloadKind::kForwardedData,
                    proto::PayloadKind::kSpaceAdaptor, proto::PayloadKind::kAdaptorSequence,
                    proto::PayloadKind::kModelReport})
    names.insert(proto::to_string(kind));
  EXPECT_EQ(names.size(), 7u);
}

// ------------------------------------------------------------ transports

/// Backend-conformance tests running against both implementations.
class TransportConformance : public ::testing::TestWithParam<proto::TransportKind> {
 protected:
  static std::unique_ptr<proto::Transport> make(std::uint64_t secret) {
    return proto::make_transport(GetParam(), secret);
  }
};

TEST_P(TransportConformance, DeliversInOrder) {
  auto net = make(1);
  const auto a = net->add_party();
  const auto b = net->add_party();
  net->send(a, b, proto::PayloadKind::kRoutingNotice, std::vector<double>{1.0});
  net->send(a, b, proto::PayloadKind::kRoutingNotice, std::vector<double>{2.0});
  ASSERT_TRUE(net->has_mail(b));
  EXPECT_DOUBLE_EQ(net->receive(b).payload[0], 1.0);
  EXPECT_DOUBLE_EQ(net->receive(b).payload[0], 2.0);
  EXPECT_FALSE(net->has_mail(b));
}

TEST_P(TransportConformance, SelfSendRejected) {
  auto net = make(1);
  const auto a = net->add_party();
  EXPECT_THROW(net->send(a, a, proto::PayloadKind::kRoutingNotice, std::vector<double>{1.0}),
               sap::Error);
}

TEST_P(TransportConformance, EmptyInboxThrows) {
  auto net = make(1);
  const auto a = net->add_party();
  (void)net->add_party();
  EXPECT_THROW(net->receive(a), sap::Error);
}

TEST_P(TransportConformance, TraceRecordsMetadataAndBytes) {
  auto net = make(99);
  const auto a = net->add_party();
  const auto b = net->add_party();
  const std::vector<double> payload(10, 1.0);
  net->send(a, b, proto::PayloadKind::kPerturbedData, payload);
  ASSERT_EQ(net->trace().size(), 1u);
  EXPECT_EQ(net->trace()[0].from, a);
  EXPECT_EQ(net->trace()[0].to, b);
  EXPECT_EQ(net->trace()[0].wire_bytes, 80u);
  EXPECT_EQ(net->total_bytes(), 80u);
  EXPECT_EQ(net->count_received(b, proto::PayloadKind::kPerturbedData), 1u);
  EXPECT_EQ(net->count_received(a, proto::PayloadKind::kPerturbedData), 0u);
}

TEST_P(TransportConformance, LinkBytesAggregatesPerDirectedPair) {
  auto net = make(5);
  const auto a = net->add_party();
  const auto b = net->add_party();
  net->send(a, b, proto::PayloadKind::kRoutingNotice, std::vector<double>{1.0});
  net->send(a, b, proto::PayloadKind::kRoutingNotice, std::vector<double>{1.0, 2.0});
  net->send(b, a, proto::PayloadKind::kRoutingNotice, std::vector<double>{1.0});
  const auto bytes = net->link_bytes();
  EXPECT_EQ(bytes.at({a, b}), 24u);
  EXPECT_EQ(bytes.at({b, a}), 8u);
}

TEST_P(TransportConformance, IdenticalSecretYieldsIdenticalCiphertext) {
  // The threaded backend must be a drop-in replacement down to the wire
  // bytes: same secret + same sends → same ciphertext in the trace.
  auto sim = proto::make_transport(proto::TransportKind::kSimulated, 77);
  auto other = make(77);
  for (auto* net : {sim.get(), other.get()}) {
    const auto a = net->add_party();
    const auto b = net->add_party();
    net->send(a, b, proto::PayloadKind::kPerturbedData, std::vector<double>{1.5, -2.5});
  }
  ASSERT_EQ(sim->trace().size(), other->trace().size());
  const auto sim_cipher = sim->trace()[0].envelope.ciphertext();
  const auto other_cipher = other->trace()[0].envelope.ciphertext();
  ASSERT_EQ(sim_cipher.size(), other_cipher.size());
  for (std::size_t i = 0; i < sim_cipher.size(); ++i)
    EXPECT_EQ(sim_cipher[i], other_cipher[i]);
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformance,
                         ::testing::Values(proto::TransportKind::kSimulated,
                                           proto::TransportKind::kThreadedLocal),
                         transport_label);

TEST(ThreadedTransport, WorkersExchangeWithinOneBatch) {
  // Unlike the synchronous backend, a worker may receive a message that
  // another worker sends *during* the same batch: receive() blocks on the
  // condvar until mail arrives.
  proto::ThreadedLocalTransport net(3);
  const auto a = net.add_party();
  const auto b = net.add_party();
  std::atomic<double> got{0.0};
  net.run_parties({[&] { net.send(a, b, proto::PayloadKind::kRoutingNotice,
                                  std::vector<double>{42.0}); },
                   [&] { got = net.receive(b).payload[0]; }});
  EXPECT_DOUBLE_EQ(got.load(), 42.0);
}

TEST(ThreadedTransport, StarvationDetectedInsteadOfDeadlock) {
  // Two workers both wait for mail that can never arrive: the transport
  // must detect quiescence and throw rather than hang.
  proto::ThreadedLocalTransport net(4);
  const auto a = net.add_party();
  const auto b = net.add_party();
  EXPECT_THROW(net.run_parties({[&] { (void)net.receive(a); },
                                [&] { (void)net.receive(b); }}),
               sap::Error);
}

TEST(ThreadedTransport, TaskExceptionPropagates) {
  proto::ThreadedLocalTransport net(5);
  (void)net.add_party();
  EXPECT_THROW(net.run_parties({[] { SAP_FAIL("task failure"); }}), sap::Error);
}

// ------------------------------------------------------------ risk formulas

TEST(Risk, Equation1KnownValues) {
  // R = pi (1 - s rho / b): pi=1, s=1, rho=b → 0 (no residual risk).
  proto::RiskInputs in{.rho = 1.0, .bound = 1.0, .satisfaction = 1.0, .identifiability = 1.0};
  EXPECT_NEAR(proto::risk_of_privacy_breach(in), 0.0, 1e-12);
  // Half-satisfied: pi (1 - 0.5) = 0.5 pi.
  in.satisfaction = 0.5;
  in.identifiability = 0.2;
  EXPECT_NEAR(proto::risk_of_privacy_breach(in), 0.2 * 0.5, 1e-12);
}

TEST(Risk, Equation1MonotoneInSatisfactionAndIdentifiability) {
  proto::RiskInputs lo{.rho = 0.8, .bound = 1.0, .satisfaction = 0.9, .identifiability = 0.5};
  proto::RiskInputs hi = lo;
  hi.satisfaction = 0.95;
  EXPECT_LT(proto::risk_of_privacy_breach(hi), proto::risk_of_privacy_breach(lo));
  hi = lo;
  hi.identifiability = 0.9;
  EXPECT_GT(proto::risk_of_privacy_breach(hi), proto::risk_of_privacy_breach(lo));
}

TEST(Risk, Equation2MaxOfLocalAndCollaborationTerms) {
  proto::RiskInputs in{.rho = 0.6, .bound = 1.0, .satisfaction = 0.9, .identifiability = 0.5};
  // local term = 0.4; collab term with k=2: (1 - 0.54)/1 = 0.46 → max = 0.46
  EXPECT_NEAR(proto::sap_risk(in, 2), 0.46, 1e-12);
  // k=10: collab term 0.46/9 ≈ 0.051 → local term dominates.
  EXPECT_NEAR(proto::sap_risk(in, 10), 0.4, 1e-12);
}

TEST(Risk, Equation2ApproachesLocalRiskAsPartiesGrow) {
  proto::RiskInputs in{.rho = 0.7, .bound = 1.0, .satisfaction = 0.8, .identifiability = 1.0};
  const double local = (1.0 - 0.7);
  EXPECT_NEAR(proto::sap_risk(in, 1000), local, 1e-9);
}

TEST(Risk, InvalidInputsThrow) {
  proto::RiskInputs in;
  in.bound = 0.0;
  EXPECT_THROW(proto::risk_of_privacy_breach(in), sap::Error);
  in = {.rho = 2.0, .bound = 1.0, .satisfaction = 1.0, .identifiability = 1.0};
  EXPECT_THROW(proto::risk_of_privacy_breach(in), sap::Error);
  in = {.rho = 0.5, .bound = 1.0, .satisfaction = 1.0, .identifiability = 1.5};
  EXPECT_THROW(proto::risk_of_privacy_breach(in), sap::Error);
  in = {.rho = 0.5, .bound = 1.0, .satisfaction = 1.0, .identifiability = 1.0};
  EXPECT_THROW(proto::sap_risk(in, 1), sap::Error);
}

TEST(MinParties, ResidualToleranceCriterionMatchesHandComputation) {
  // k = 1 + ceil((1 - s0 r) / (1 - s0)); s0=0.95, r=0.9: (1-0.855)/0.05 = 2.9
  // → k = 1 + 3 = 4.
  EXPECT_EQ(proto::min_parties(0.95, 0.9, proto::MinPartiesCriterion::kResidualTolerance), 4u);
  // s0=0.99, r=0.89: (1-0.8811)/0.01 = 11.89 → k = 13.
  EXPECT_EQ(proto::min_parties(0.99, 0.89, proto::MinPartiesCriterion::kResidualTolerance),
            13u);
}

TEST(MinParties, MonotoneIncreasingInS0AndDecreasingInRate) {
  using C = proto::MinPartiesCriterion;
  std::size_t prev = 2;
  for (double s0 : {0.90, 0.92, 0.94, 0.96, 0.98, 0.99}) {
    const auto k = proto::min_parties(s0, 0.9, C::kResidualTolerance);
    EXPECT_GE(k, prev);
    prev = k;
  }
  EXPECT_GE(proto::min_parties(0.95, 0.85, C::kResidualTolerance),
            proto::min_parties(0.95, 0.98, C::kResidualTolerance));
}

TEST(MinParties, NoExtraRiskCriterionDecreasesInS0) {
  using C = proto::MinPartiesCriterion;
  const auto k_low = proto::min_parties(0.90, 0.9, C::kNoExtraRisk);
  const auto k_high = proto::min_parties(0.99, 0.9, C::kNoExtraRisk);
  EXPECT_LE(k_high, k_low);
}

TEST(MinParties, CapRespected) {
  const auto k = proto::min_parties(0.999999, 0.5,
                                    proto::MinPartiesCriterion::kResidualTolerance, 50);
  EXPECT_EQ(k, 51u);  // cap + 1 signals "unsatisfiable below cap"
}

TEST(MinParties, InvalidArgsThrow) {
  using C = proto::MinPartiesCriterion;
  EXPECT_THROW(proto::min_parties(0.0, 0.9, C::kResidualTolerance), sap::Error);
  EXPECT_THROW(proto::min_parties(1.0, 0.9, C::kResidualTolerance), sap::Error);
  EXPECT_THROW(proto::min_parties(0.9, 0.0, C::kResidualTolerance), sap::Error);
  EXPECT_THROW(proto::min_parties(0.9, 1.1, C::kResidualTolerance), sap::Error);
}

// ------------------------------------------------------------ SAP session

/// End-to-end SAP runs parameterized over the transport backend.
class SapRun : public ::testing::TestWithParam<proto::TransportKind> {
 protected:
  static proto::SapOptions fast_opts(std::uint64_t seed, proto::TransportKind transport) {
    auto opts = proto::SapOptions::fast();
    opts.seed = seed;
    opts.transport = transport;
    return opts;
  }

  std::unique_ptr<proto::SapSession> make_session(std::size_t k, std::uint64_t seed) const {
    return std::make_unique<proto::SapSession>(provider_split("Iris", k, seed),
                                               fast_opts(seed, GetParam()));
  }
};

TEST_P(SapRun, UnifiedDatasetPoolsAllRecords) {
  auto session = make_session(4, 1);
  const auto result = session->run();
  EXPECT_EQ(result.unified.size(), 150u);  // Iris row count
  EXPECT_EQ(result.unified.dims(), 4u);
  EXPECT_EQ(result.unified.classes().size(), 3u);
}

TEST_P(SapRun, CoordinatorNeverReceivesData) {
  auto session = make_session(5, 2);
  (void)session->run();
  const auto& net = session->transport();
  const proto::PartyId coordinator = 4;  // k-1 with k=5
  EXPECT_EQ(net.count_received(coordinator, proto::PayloadKind::kPerturbedData), 0u);
  EXPECT_EQ(net.count_received(coordinator, proto::PayloadKind::kForwardedData), 0u);
}

TEST_P(SapRun, MinerReceivesExactlyKDatasetsAndKAdaptors) {
  auto session = make_session(5, 3);
  (void)session->run();
  const auto& net = session->transport();
  const proto::PartyId miner = 5;
  EXPECT_EQ(net.count_received(miner, proto::PayloadKind::kForwardedData), 5u);
  EXPECT_EQ(net.count_received(miner, proto::PayloadKind::kAdaptorSequence), 5u);
  // The miner must never see raw provider-to-provider traffic kinds.
  EXPECT_EQ(net.count_received(miner, proto::PayloadKind::kPerturbedData), 0u);
  EXPECT_EQ(net.count_received(miner, proto::PayloadKind::kTargetSpace), 0u);
}

TEST_P(SapRun, EveryProviderDatasetReachesMinerViaSomePeer) {
  auto session = make_session(6, 4);
  const auto result = session->run();
  ASSERT_EQ(result.audit_forwarder_of.size(), 6u);
  const proto::PartyId coordinator = 5;
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NE(result.audit_forwarder_of[i], coordinator)
        << "coordinator must never forward data";
    EXPECT_LT(result.audit_forwarder_of[i], 5u);
  }
}

TEST_P(SapRun, PartyReportsAreComplete) {
  auto session = make_session(4, 5);
  const auto result = session->run();
  ASSERT_EQ(result.parties.size(), 4u);
  for (const auto& p : result.parties) {
    EXPECT_GT(p.local_rho, 0.0);
    EXPECT_GE(p.bound, p.local_rho);
    EXPECT_GT(p.satisfaction, 0.0);
    EXPECT_NEAR(p.identifiability, 1.0 / 3.0, 1e-12);
    EXPECT_GE(p.risk_breach, 0.0);
    EXPECT_LE(p.risk_breach, 1.0);
    EXPECT_GE(p.risk_sap, 0.0);
    EXPECT_LE(p.risk_sap, 1.0);
  }
}

TEST_P(SapRun, DeterministicForSameSeed) {
  const auto a = make_session(4, 42)->run();
  const auto b = make_session(4, 42)->run();
  EXPECT_TRUE(a.unified.features().approx_equal(b.unified.features(), 0.0));
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  ASSERT_EQ(a.parties.size(), b.parties.size());
  for (std::size_t i = 0; i < a.parties.size(); ++i)
    EXPECT_DOUBLE_EQ(a.parties[i].local_rho, b.parties[i].local_rho);
}

TEST_P(SapRun, DifferentSeedsShuffleAssignments) {
  const auto a = make_session(6, 1)->run();
  const auto b = make_session(6, 99)->run();
  // Forwarder assignments should differ for at least one provider across
  // two independent runs (probability of full coincidence is negligible).
  EXPECT_NE(a.audit_forwarder_of, b.audit_forwarder_of);
}

TEST_P(SapRun, MinerJobRunsAndReportsBroadcast) {
  auto session = make_session(4, 7);
  bool job_ran = false;
  const auto result = session->run([&](const Dataset& unified) {
    job_ran = true;
    return std::vector<double>{static_cast<double>(unified.size())};
  });
  EXPECT_TRUE(job_ran);
  (void)result;
  // One model report per provider.
  std::size_t reports = 0;
  for (proto::PartyId p = 0; p < 4; ++p)
    reports += session->transport().count_received(p, proto::PayloadKind::kModelReport);
  EXPECT_EQ(reports, 4u);
}

TEST_P(SapRun, FewerThanThreeProvidersRejected) {
  EXPECT_THROW(proto::SapSession(provider_split("Iris", 2, 1), fast_opts(1, GetParam())),
               sap::Error);
}

TEST_P(SapRun, MismatchedDimensionsRejected) {
  auto parts = provider_split("Iris", 3, 1);
  // Corrupt one provider with a different dimensionality.
  parts[1] = Dataset("bad", Matrix(20, 3, 0.5), std::vector<int>(20, 0));
  EXPECT_THROW(proto::SapSession(std::move(parts), fast_opts(1, GetParam())), sap::Error);
}

// ------------------------------------------------------------ phase machine

TEST_P(SapRun, PhasesAdvanceInDeclaredOrder) {
  auto session = make_session(4, 11);
  using P = proto::SessionPhase;
  const std::vector<P> expected{P::kLocalOptimize, P::kTargetDistribution,
                                P::kPermutationExchange, P::kPerturbAndForward,
                                P::kAdaptorAlignment, P::kMine};
  for (std::size_t i = 0; i + 1 < expected.size(); ++i) {
    EXPECT_EQ(session->phase(), expected[i]);
    session->advance();
  }
  EXPECT_EQ(session->phase(), P::kMine);
  // Terminal: advancing past kMine is a no-op.
  session->advance();
  EXPECT_EQ(session->phase(), P::kMine);
  // The log records every executed phase, in order, with cost snapshots.
  ASSERT_EQ(session->phase_log().size(), expected.size() - 1);
  for (std::size_t i = 0; i + 1 < expected.size(); ++i)
    EXPECT_EQ(session->phase_log()[i].phase, expected[i]);
  EXPECT_GT(session->phase_log().back().messages, 0u);
}

TEST_P(SapRun, PhasesAreIndividuallyObservable) {
  auto session = make_session(4, 12);
  session->run_until(proto::SessionPhase::kPermutationExchange);
  // After target distribution, only control-plane traffic exists.
  const auto& net = session->transport();
  EXPECT_EQ(net.count_received(4, proto::PayloadKind::kForwardedData), 0u);
  EXPECT_GT(net.count_received(0, proto::PayloadKind::kTargetSpace), 0u);
  session->run_until(proto::SessionPhase::kMine);
  EXPECT_EQ(net.count_received(4, proto::PayloadKind::kForwardedData), 4u);
}

TEST_P(SapRun, MultipleJobsWithoutRedoingExchange) {
  auto session = make_session(4, 13);
  session->run_until(proto::SessionPhase::kMine);
  const std::size_t exchange_messages = session->transport().trace().size();

  const auto r1 = session->mine_named("record-count");
  const auto r2 = session->mine_named("class-histogram");
  // Identical pool both times, no exchange traffic re-paid: each named job
  // adds exactly k model-report broadcasts.
  EXPECT_TRUE(r1.unified.features().approx_equal(r2.unified.features(), 0.0));
  EXPECT_EQ(r1.messages, exchange_messages + 4);
  EXPECT_EQ(r2.messages, exchange_messages + 8);
}

TEST_P(SapRun, CustomRegisteredJobIsServed) {
  auto session = make_session(4, 14);
  bool ran = false;
  session->register_job("my-job", [&](const Dataset& unified) {
    ran = true;
    return std::vector<double>{static_cast<double>(unified.dims())};
  });
  const auto names = session->job_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "my-job"), names.end());
  (void)session->mine_named("my-job");
  EXPECT_TRUE(ran);
}

TEST_P(SapRun, UnknownNamedJobRejected) {
  auto session = make_session(4, 15);
  EXPECT_THROW(session->mine_named("no-such-job"), sap::Error);
}

TEST(SapCrossBackend, UnifiedPoolIsBitIdenticalAcrossTransports) {
  // The canonical pooling order makes the protocol output independent of
  // message arrival order: same seed → identical unified data, bytes and
  // accounting under the synchronous and the concurrent backend.
  auto opts = proto::SapOptions::fast();
  opts.seed = 1234;
  opts.transport = proto::TransportKind::kSimulated;
  proto::SapSession sim(provider_split("Wine", 5, 9), opts);
  opts.transport = proto::TransportKind::kThreadedLocal;
  proto::SapSession threaded(provider_split("Wine", 5, 9), opts);

  const auto a = sim.run();
  const auto b = threaded.run();
  EXPECT_TRUE(a.unified.features().approx_equal(b.unified.features(), 0.0));
  EXPECT_EQ(a.unified.labels(), b.unified.labels());
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.messages, b.messages);
  ASSERT_EQ(a.parties.size(), b.parties.size());
  for (std::size_t i = 0; i < a.parties.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.parties[i].local_rho, b.parties[i].local_rho);
    EXPECT_DOUBLE_EQ(a.parties[i].satisfaction, b.parties[i].satisfaction);
  }
}

TEST(SapGolden, MatchesPinnedDeterministicBaseline) {
  // tests/golden.hpp is the one home of the pinned baseline values; see the
  // header for the re-pinning policy.
  auto opts = proto::SapOptions::fast();
  opts.seed = 4242;
  proto::SapSession session(provider_split("Iris", 3, 4242), opts);
  const auto result = session.run();
  ASSERT_EQ(result.parties.size(), 3u);
  EXPECT_NEAR(result.parties[0].local_rho, sap::testing::kGoldenSessionParty0Rho,
              sap::testing::kGoldenTolerance);
}

TEST(SapCrossBackend, OptimizerThreadsNeverChangeTheResult) {
  // LocalOptimize's scoring pool (SapOptions::optimizer.threads) is a pure
  // latency knob: the per-candidate seed derivation makes every thread
  // count — mixed freely with either transport — produce bit-identical
  // pools and accounting (optimizer.hpp determinism contract).
  sap::proto::SapResult reference;
  bool have_reference = false;
  for (const auto& [transport, threads] :
       {std::pair<proto::TransportKind, std::size_t>{proto::TransportKind::kSimulated, 0},
        {proto::TransportKind::kSimulated, 8},
        {proto::TransportKind::kThreadedLocal, 2}}) {
    auto opts = proto::SapOptions::fast();
    opts.seed = 4242;
    opts.transport = transport;
    opts.optimizer.threads = threads;
    proto::SapSession session(provider_split("Iris", 3, 4242), opts);
    const auto result = session.run();
    if (!have_reference) {
      reference = result;
      have_reference = true;
      continue;
    }
    EXPECT_TRUE(result.unified.features().approx_equal(reference.unified.features(), 0.0));
    ASSERT_EQ(result.parties.size(), reference.parties.size());
    for (std::size_t i = 0; i < result.parties.size(); ++i) {
      EXPECT_EQ(result.parties[i].local_rho, reference.parties[i].local_rho);
      EXPECT_EQ(result.parties[i].bound, reference.parties[i].bound);
      EXPECT_EQ(result.parties[i].satisfaction, reference.parties[i].satisfaction);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, SapRun,
                         ::testing::Values(proto::TransportKind::kSimulated,
                                           proto::TransportKind::kThreadedLocal),
                         transport_label);

// Parameterized end-to-end sweep: the §3 information-flow invariants must
// hold for every (dataset, party count, transport) combination.
class SapInvariantSweep
    : public ::testing::TestWithParam<
          std::tuple<const char*, std::size_t, proto::TransportKind>> {};

TEST_P(SapInvariantSweep, InformationFlowInvariantsHold) {
  const auto [dataset, k, transport] = GetParam();
  auto opts = proto::SapOptions::fast();
  opts.seed = 0xABC0 + k;
  opts.compute_satisfaction = false;
  opts.transport = transport;
  auto shards = provider_split(dataset, k, 7 * k + 1);
  std::size_t total_records = 0;
  for (const auto& s : shards) total_records += s.size();

  proto::SapSession session(std::move(shards), opts);
  const auto result = session.run();
  const auto& net = session.transport();
  const auto coordinator = static_cast<proto::PartyId>(k - 1);
  const auto miner = static_cast<proto::PartyId>(k);

  // 1. Unified pool is lossless.
  EXPECT_EQ(result.unified.size(), total_records);
  // 2. Coordinator never receives data.
  EXPECT_EQ(net.count_received(coordinator, proto::PayloadKind::kPerturbedData), 0u);
  EXPECT_EQ(net.count_received(coordinator, proto::PayloadKind::kForwardedData), 0u);
  // 3. Miner receives exactly k shards + k adaptors, and nothing else that
  //    would leak sources.
  EXPECT_EQ(net.count_received(miner, proto::PayloadKind::kForwardedData), k);
  EXPECT_EQ(net.count_received(miner, proto::PayloadKind::kAdaptorSequence), k);
  EXPECT_EQ(net.count_received(miner, proto::PayloadKind::kTargetSpace), 0u);
  EXPECT_EQ(net.count_received(miner, proto::PayloadKind::kSpaceAdaptor), 0u);
  // 4. Forwarders are never the coordinator.
  for (const auto fwd : result.audit_forwarder_of) EXPECT_NE(fwd, coordinator);
  // 5. Identifiability accounting matches the party count.
  for (const auto& p : result.parties)
    EXPECT_NEAR(p.identifiability, 1.0 / static_cast<double>(k - 1), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    DatasetsAndParties, SapInvariantSweep,
    ::testing::Combine(::testing::Values("Iris", "Wine", "Diabetes", "Votes"),
                       ::testing::Values(std::size_t{3}, std::size_t{5}, std::size_t{8}),
                       ::testing::Values(proto::TransportKind::kSimulated,
                                         proto::TransportKind::kThreadedLocal)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_" +
             (std::get<2>(info.param) == proto::TransportKind::kSimulated
                  ? "Simulated"
                  : "ThreadedLocal");
    });

TEST(SapIdentifiability, ForwarderChoiceIsNearUniformOverRuns) {
  // Monte-Carlo check of pi_i = 1/(k-1): over many protocol runs, provider
  // 0's data should reach the miner via each of the k-1 non-coordinator
  // peers roughly equally often.
  const std::size_t k = 5;
  std::map<proto::PartyId, int> counts;
  const int runs = 60;
  for (int r = 0; r < runs; ++r) {
    auto opts = proto::SapOptions::fast();
    opts.seed = 1000 + static_cast<std::uint64_t>(r);
    opts.compute_satisfaction = false;  // keep the Monte-Carlo cheap
    proto::SapSession session(provider_split("Iris", k, 77), opts);
    const auto result = session.run();
    ++counts[result.audit_forwarder_of[0]];
  }
  ASSERT_LE(counts.size(), k - 1);
  for (const auto& [forwarder, count] : counts) {
    EXPECT_LT(forwarder, k - 1);
    EXPECT_NEAR(static_cast<double>(count) / runs, 1.0 / (k - 1), 0.18);
  }
}

// ------------------------------------------------------------ single-shot use
//
// Ported from the removed SapProtocol compat wrapper's tests: the one-call
// construct → run() → inspect-the-network workflow the wrapper preserved
// must stay expressible directly on SapSession.

TEST(SapSingleShot, OneCallRunServesJobAndNetworkIsInspectable) {
  auto opts = proto::SapOptions::fast();
  opts.seed = 7;
  proto::SapSession session(provider_split("Iris", 4, 7), opts);
  EXPECT_EQ(session.provider_count(), 4u);
  bool job_ran = false;
  const auto result = session.run([&](const Dataset& unified) {
    job_ran = true;
    return std::vector<double>{static_cast<double>(unified.size())};
  });
  EXPECT_TRUE(job_ran);
  EXPECT_EQ(result.unified.size(), 150u);
  EXPECT_EQ(session.transport().count_received(4, proto::PayloadKind::kForwardedData), 4u);

  // A second session over the same inputs reproduces the pool bit for bit
  // (the historical wrapper's fresh-run-per-call semantics).
  proto::SapSession again(provider_split("Iris", 4, 7), opts);
  const auto direct = again.run();
  EXPECT_TRUE(result.unified.features().approx_equal(direct.unified.features(), 0.0));
}

TEST(SapSingleShot, FaultInjectionStillDetected) {
  auto opts = proto::SapOptions::fast();
  opts.seed = 8;
  opts.compute_satisfaction = false;
  proto::SapSession session(provider_split("Iris", 4, 8), opts);
  session.inject_faults([](proto::PartyId, proto::PartyId, proto::PayloadKind kind) {
    return kind == proto::PayloadKind::kSpaceAdaptor;
  });
  EXPECT_THROW(session.run(), sap::Error);
  EXPECT_GE(session.transport().dropped_count(), 1u);
}

// ------------------------------------------------------------ direct baseline

TEST(DirectBaseline, PoolsAllRecordsWithFullIdentifiability) {
  auto opts = proto::SapOptions::fast();
  opts.seed = 201;
  opts.compute_satisfaction = false;
  proto::DirectSubmissionProtocol protocol(provider_split("Iris", 4, 201), opts);
  const auto result = protocol.run();
  EXPECT_EQ(result.unified.size(), 150u);
  ASSERT_EQ(result.parties.size(), 4u);
  for (const auto& p : result.parties) EXPECT_DOUBLE_EQ(p.identifiability, 1.0);
}

TEST(DirectBaseline, RiskStrictlyAboveSapForSameParties) {
  auto opts = proto::SapOptions::fast();
  opts.seed = 202;
  auto shards_a = provider_split("Iris", 5, 202);
  auto shards_b = shards_a;
  proto::SapSession sap_session(std::move(shards_a), opts);
  proto::DirectSubmissionProtocol direct_protocol(std::move(shards_b), opts);
  const auto sap_result = sap_session.run();
  const auto direct_result = direct_protocol.run();

  double sap_risk_sum = 0.0, direct_risk_sum = 0.0;
  for (const auto& p : sap_result.parties) sap_risk_sum += p.risk_breach;
  for (const auto& p : direct_result.parties) direct_risk_sum += p.risk_breach;
  // pi drops from 1 to 1/(k-1) = 1/4: risk should shrink accordingly.
  EXPECT_LT(sap_risk_sum, direct_risk_sum);
}

TEST(DirectBaseline, CheaperOnTheWireThanSap) {
  auto opts = proto::SapOptions::fast();
  opts.seed = 203;
  opts.compute_satisfaction = false;
  auto shards_a = provider_split("Iris", 4, 203);
  auto shards_b = shards_a;
  proto::SapSession sap_session(std::move(shards_a), opts);
  proto::DirectSubmissionProtocol direct_protocol(std::move(shards_b), opts);
  const auto sap_result = sap_session.run();
  const auto direct_result = direct_protocol.run();
  EXPECT_LT(direct_result.total_bytes, sap_result.total_bytes);
}

TEST(DirectBaseline, TwoProvidersAllowed) {
  // Unlike SAP (which needs an anonymity set), direct submission works with
  // two providers.
  auto opts = proto::SapOptions::fast();
  opts.seed = 204;
  opts.compute_satisfaction = false;
  const Dataset pool = sap::data::make_uci("Iris", 204);
  Engine eng(204);
  sap::data::PartitionOptions popts;
  auto shards = sap::data::partition(pool, 2, popts, eng);
  proto::DirectSubmissionProtocol protocol(std::move(shards), opts);
  EXPECT_EQ(protocol.run().unified.size(), 150u);
}

TEST(DirectBaseline, MinerJobRuns) {
  auto opts = proto::SapOptions::fast();
  opts.seed = 205;
  opts.compute_satisfaction = false;
  proto::DirectSubmissionProtocol protocol(provider_split("Iris", 3, 205), opts);
  bool ran = false;
  (void)protocol.run([&](const Dataset& unified) {
    ran = true;
    return std::vector<double>{double(unified.size())};
  });
  EXPECT_TRUE(ran);
}

// ------------------------------------------------------------ failure injection

class SapFaults : public ::testing::TestWithParam<proto::TransportKind> {
 protected:
  std::unique_ptr<proto::SapSession> make_session(std::size_t k, std::uint64_t seed) const {
    auto opts = proto::SapOptions::fast();
    opts.seed = seed;
    opts.compute_satisfaction = false;
    opts.transport = GetParam();
    return std::make_unique<proto::SapSession>(provider_split("Iris", k, seed), opts);
  }
};

TEST_P(SapFaults, DroppedDataMessageIsDetected) {
  auto session = make_session(4, 91);
  // Drop the first perturbed-data message. The filter must be thread-safe
  // under the concurrent backend, hence the atomic flag.
  auto dropped = std::make_shared<std::atomic<bool>>(false);
  session->inject_faults([dropped](proto::PartyId, proto::PartyId, proto::PayloadKind kind) {
    if (kind != proto::PayloadKind::kPerturbedData) return false;
    return !dropped->exchange(true);
  });
  EXPECT_THROW(session->run(), sap::Error);
  EXPECT_GE(session->transport().dropped_count(), 1u);
}

TEST_P(SapFaults, DroppedRoutingNoticeAbortsBeforeExchange) {
  auto session = make_session(4, 92);
  session->inject_faults([](proto::PartyId, proto::PartyId to, proto::PayloadKind kind) {
    return kind == proto::PayloadKind::kRoutingNotice && to == 0;
  });
  try {
    session->run();
    FAIL() << "protocol must abort on missing setup messages";
  } catch (const sap::Error& e) {
    EXPECT_NE(std::string(e.what()).find("setup"), std::string::npos);
  }
  // Crucially: no provider dataset may have reached the miner before the
  // abort (nothing is mined from a half-configured round).
  EXPECT_EQ(session->transport().count_received(4, proto::PayloadKind::kForwardedData), 0u);
}

TEST_P(SapFaults, DroppedAdaptorIsDetected) {
  auto session = make_session(5, 93);
  session->inject_faults([](proto::PartyId, proto::PartyId, proto::PayloadKind kind) {
    return kind == proto::PayloadKind::kSpaceAdaptor;
  });
  EXPECT_THROW(session->run(), sap::Error);
}

TEST_P(SapFaults, DroppedModelReportIsBenign) {
  // Losing the final broadcast degrades service but must not corrupt the
  // protocol result itself.
  auto session = make_session(4, 94);
  session->inject_faults([](proto::PartyId, proto::PartyId, proto::PayloadKind kind) {
    return kind == proto::PayloadKind::kModelReport;
  });
  const auto result = session->run(
      [](const Dataset& unified) { return std::vector<double>{double(unified.size())}; });
  EXPECT_EQ(result.unified.size(), 150u);
  EXPECT_EQ(session->transport().dropped_count(), 4u);
}

TEST_P(SapFaults, FailedSessionIsPoisonedAgainstResumption) {
  // A throw mid-exchange leaves partially-mutated state (queued mail,
  // advanced engines); re-running the session must be refused outright
  // rather than mining a corrupted pool.
  auto session = make_session(4, 96);
  session->inject_faults([](proto::PartyId, proto::PartyId, proto::PayloadKind kind) {
    return kind == proto::PayloadKind::kSpaceAdaptor;
  });
  EXPECT_THROW(session->run(), sap::Error);
  EXPECT_TRUE(session->failed());
  try {
    session->run();
    FAIL() << "poisoned session must refuse to resume";
  } catch (const sap::Error& e) {
    EXPECT_NE(std::string(e.what()).find("new session"), std::string::npos);
  }
}

TEST_P(SapFaults, NoFaultsMeansNoDrops) {
  auto session = make_session(4, 95);
  (void)session->run();
  EXPECT_EQ(session->transport().dropped_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, SapFaults,
                         ::testing::Values(proto::TransportKind::kSimulated,
                                           proto::TransportKind::kThreadedLocal),
                         transport_label);

// ------------------------------------------------------------ source linking

/// Split each shard: one half is what the miner observes, the other half
/// models the provider's previously published statistics (see adversary.hpp
/// on why profiles must not come from the observed shards themselves).
static double linking_accuracy(sap::data::PartitionKind kind, std::uint64_t seed) {
  const Dataset pool = sap::data::make_uci("Credit_g", seed);
  Engine eng(seed ^ 0xAD);
  sap::data::PartitionOptions popts;
  popts.kind = kind;
  popts.class_alpha = 0.4;
  const auto shards = sap::data::partition(pool, 6, popts, eng);
  std::vector<Dataset> observed, reference;
  for (const auto& shard : shards) {
    auto halves = sap::data::train_test_split(shard, 0.5, eng);
    observed.push_back(std::move(halves.train));
    reference.push_back(std::move(halves.test));
  }
  const auto obs = proto::observe_shards(observed, pool.classes());
  const auto prof = proto::provider_profiles(reference, pool.classes());
  return proto::link_sources(obs, prof).accuracy;
}

TEST(SourceLinking, UniformShardsStayNearBaseline) {
  // Fingerprinting uniform shards via reference profiles should do poorly:
  // all shards look like the pool.
  double acc = 0.0;
  const int reps = 8;
  for (int rep = 0; rep < reps; ++rep)
    acc += linking_accuracy(sap::data::PartitionKind::kUniform, 50 + rep);
  EXPECT_LT(acc / reps, 0.55);
}

TEST(SourceLinking, ClassSkewedShardsAreFarMoreLinkable) {
  double acc_uniform = 0.0, acc_class = 0.0;
  const int reps = 8;
  for (int rep = 0; rep < reps; ++rep) {
    acc_uniform += linking_accuracy(sap::data::PartitionKind::kUniform, 70 + rep);
    acc_class += linking_accuracy(sap::data::PartitionKind::kClass, 70 + rep);
  }
  EXPECT_GT(acc_class / reps, acc_uniform / reps + 0.15);
}

TEST(SourceLinking, PerfectFingerprintsAreFullyLinkable) {
  // Degenerate sanity check: single-class shards with distinct classes are
  // trivially linkable.
  Matrix f(30, 2, 0.5);
  std::vector<int> labels(30);
  for (std::size_t i = 0; i < 30; ++i) labels[i] = static_cast<int>(i / 10);
  const Dataset pool("three-classes", std::move(f), std::move(labels));
  std::vector<Dataset> shards;
  for (int c = 0; c < 3; ++c) {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < 30; ++i)
      if (pool.label(i) == c) idx.push_back(i);
    shards.push_back(pool.subset(idx));
  }
  const auto obs = proto::observe_shards(shards, pool.classes());
  const auto prof = proto::provider_profiles(shards, pool.classes());
  const auto result = proto::link_sources(obs, prof);
  EXPECT_DOUBLE_EQ(result.accuracy, 1.0);
  EXPECT_NEAR(result.baseline, 0.5, 1e-12);
}

TEST(SourceLinking, InvalidInputsThrow) {
  EXPECT_THROW(proto::link_sources({}, {}), sap::Error);
  std::vector<proto::ShardObservation> one(1);
  std::vector<proto::ProviderProfile> two(2);
  EXPECT_THROW(proto::link_sources(one, two), sap::Error);
}

TEST(SapCost, BytesScaleWithDataNotWithGossip) {
  // Data payloads dominate the wire cost: total bytes should be within a
  // small factor of 2x the raw data volume (each record crosses two hops).
  auto opts = proto::SapOptions::fast();
  opts.compute_satisfaction = false;
  proto::SapSession session(provider_split("Iris", 4, 9), opts);
  const auto result = session.run();
  const std::size_t raw_bytes = 150 * 4 * sizeof(double);
  EXPECT_GT(result.total_bytes, 2 * raw_bytes);       // two data hops
  EXPECT_LT(result.total_bytes, 2 * raw_bytes * 3);   // plus bounded overhead
}

}  // namespace
