// End-to-end integration tests: the full pipeline of the paper —
// partition → local optimization → SAP exchange → unified mining —
// checked for both privacy and utility outcomes.
#include <gtest/gtest.h>

#include <cmath>

#include "classify/knn.hpp"
#include "classify/svm.hpp"
#include "data/normalize.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "protocol/session.hpp"

namespace {

using sap::data::Dataset;
using sap::rng::Engine;
namespace proto = sap::proto;

struct Pipeline {
  Dataset train_orig;  // normalized original training pool
  Dataset test_orig;   // normalized original test set
  proto::SapResult sap;
};

/// Run the full paper pipeline on one dataset: normalize, split, partition
/// the training pool across k providers, execute SAP.
Pipeline run_pipeline(const std::string& name, std::size_t k, std::uint64_t seed,
                      sap::data::PartitionKind kind) {
  const Dataset raw = sap::data::make_uci(name, seed);
  sap::data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  const Dataset normalized(raw.name(), norm.transform(raw.features()), raw.labels());

  Engine eng(seed * 31 + 7);
  const auto split = sap::data::stratified_split(normalized, 0.7, eng);

  sap::data::PartitionOptions popts;
  popts.kind = kind;
  auto parts = sap::data::partition(split.train, k, popts, eng);

  auto opts = proto::SapOptions::fast();
  opts.seed = seed;
  proto::SapSession session(std::move(parts), opts);

  Pipeline out{split.train, split.test, session.run()};
  return out;
}

/// Transform a normalized N x d dataset into the SAP target space
/// (provider-side operation: they know G_t).
Dataset to_target_space(const Dataset& ds, const sap::perturb::GeometricPerturbation& g_t) {
  return {ds.name(), g_t.apply_noiseless(ds.features_T()).transpose(), ds.labels()};
}

TEST(Integration, KnnAccuracyDeviationSmallUnderUniformPartition) {
  const auto pipe = run_pipeline("Iris", 4, 1, sap::data::PartitionKind::kUniform);

  sap::ml::Knn baseline(5);
  baseline.fit(pipe.train_orig);
  const double acc_orig = sap::ml::accuracy(baseline, pipe.test_orig);

  sap::ml::Knn unified(5);
  unified.fit(pipe.sap.unified);
  const Dataset test_t = to_target_space(pipe.test_orig, pipe.sap.target_space);
  const double acc_sap = sap::ml::accuracy(unified, test_t);

  // Paper Figure 5: deviations within a few percentage points.
  EXPECT_GT(acc_orig, 0.85);
  EXPECT_NEAR(acc_sap, acc_orig, 0.08);
}

TEST(Integration, SvmAccuracyDeviationSmallUnderUniformPartition) {
  const auto pipe = run_pipeline("Wine", 4, 2, sap::data::PartitionKind::kUniform);

  sap::ml::Svm baseline;
  baseline.fit(pipe.train_orig);
  const double acc_orig = sap::ml::accuracy(baseline, pipe.test_orig);

  sap::ml::Svm unified;
  unified.fit(pipe.sap.unified);
  const Dataset test_t = to_target_space(pipe.test_orig, pipe.sap.target_space);
  const double acc_sap = sap::ml::accuracy(unified, test_t);

  EXPECT_GT(acc_orig, 0.8);
  EXPECT_NEAR(acc_sap, acc_orig, 0.1);
}

TEST(Integration, ClassSkewedPartitionStillPoolsEverything) {
  const auto pipe = run_pipeline("Diabetes", 5, 3, sap::data::PartitionKind::kClass);
  EXPECT_EQ(pipe.sap.unified.size(), pipe.train_orig.size());
  // Unified pool restores the global class distribution even though each
  // provider's share was skewed.
  EXPECT_LT(sap::data::class_skew(pipe.train_orig, pipe.sap.unified), 1e-9);
}

TEST(Integration, UnifiedSpacePreservesPairwiseDistancesUpToNoise) {
  // Compare distance *distributions* via mean pairwise distance (the
  // unified pool reorders records, so direct pairing is unavailable).
  // Mean over ALL pairs: prefix subsampling would bias the comparison
  // because stratified_split returns class-ordered records while the
  // unified pool is shard-ordered.
  auto mean_pairwise = [](const Dataset& ds) {
    double total = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < ds.size(); ++i)
      for (std::size_t j = i + 1; j < ds.size(); ++j) {
        total += sap::linalg::distance(ds.record(i), ds.record(j));
        ++count;
      }
    return total / static_cast<double>(count);
  };

  // With sigma = 0 the unified space is an exact rigid image of the pool:
  // the complete pairwise-distance multiset is preserved, so the means must
  // agree to numerical precision.
  {
    const Dataset raw = sap::data::make_uci("Iris", 4);
    sap::data::MinMaxNormalizer norm;
    norm.fit(raw.features());
    const Dataset pool(raw.name(), norm.transform(raw.features()), raw.labels());
    Engine eng(44);
    const auto split = sap::data::stratified_split(pool, 0.7, eng);
    sap::data::PartitionOptions popts;
    auto parts = sap::data::partition(split.train, 4, popts, eng);
    auto opts = proto::SapOptions::fast();
    opts.noise_sigma = 0.0;
    opts.seed = 45;
    proto::SapSession session(std::move(parts), opts);
    const auto result = session.run();
    const Dataset train_t = to_target_space(split.train, result.target_space);
    const double d_orig = mean_pairwise(train_t);
    const double d_unified = mean_pairwise(result.unified);
    EXPECT_NEAR(d_unified, d_orig, 1e-9);
  }

  // With sigma > 0 distances inflate by roughly sqrt(d^2 + 2 d_dims sigma^2)
  // (independent noise on both endpoints): check the unified mean lies
  // between the noiseless value and the inflated expectation's vicinity.
  {
    const auto pipe = run_pipeline("Iris", 4, 4, sap::data::PartitionKind::kUniform);
    const Dataset train_t = to_target_space(pipe.train_orig, pipe.sap.target_space);
    const double d_orig = mean_pairwise(train_t);
    const double d_unified = mean_pairwise(pipe.sap.unified);
    const double sigma = 0.1;  // SapOptions::fast() default noise level
    const double inflated = std::sqrt(
        d_orig * d_orig + 2.0 * static_cast<double>(pipe.train_orig.dims()) * sigma * sigma);
    EXPECT_GT(d_unified, d_orig * 0.95);
    EXPECT_LT(d_unified, inflated * 1.25);
  }
}

TEST(Integration, SapRiskBelowNaiveSinglePartyExposure) {
  // With SAP, identifiability drops from 1 to 1/(k-1); eq. (1) risk must be
  // strictly below the same risk at identifiability 1.
  const auto pipe = run_pipeline("Iris", 5, 5, sap::data::PartitionKind::kUniform);
  for (const auto& p : pipe.sap.parties) {
    proto::RiskInputs exposed{.rho = std::min(p.local_rho, p.bound),
                              .bound = p.bound,
                              .satisfaction = p.satisfaction,
                              .identifiability = 1.0};
    const double naive_risk = proto::risk_of_privacy_breach(exposed);
    if (naive_risk > 0.0) {
      EXPECT_LT(p.risk_breach, naive_risk);
    }
  }
}

TEST(Integration, MoreNoiseLowersUtilityRaisesPrivacy) {
  const Dataset raw = sap::data::make_uci("Iris", 6);
  sap::data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  const Dataset normalized(raw.name(), norm.transform(raw.features()), raw.labels());
  Engine eng(61);
  const auto split = sap::data::stratified_split(normalized, 0.7, eng);

  auto run_sigma = [&](double sigma) {
    Engine peng(62);
    sap::data::PartitionOptions popts;
    auto parts = sap::data::partition(split.train, 4, popts, peng);
    auto opts = proto::SapOptions::fast();
    opts.noise_sigma = sigma;
    opts.seed = 63;
    proto::SapSession session(std::move(parts), opts);
    const auto result = session.run();
    sap::ml::Knn knn(5);
    knn.fit(result.unified);
    const Dataset test_t = to_target_space(split.test, result.target_space);
    double mean_rho = 0.0;
    for (const auto& p : result.parties) mean_rho += p.local_rho;
    mean_rho /= static_cast<double>(result.parties.size());
    return std::pair{sap::ml::accuracy(knn, test_t), mean_rho};
  };

  const auto [acc_low, rho_low] = run_sigma(0.02);
  const auto [acc_high, rho_high] = run_sigma(0.6);
  EXPECT_GT(acc_low, acc_high);   // heavy noise destroys utility
  EXPECT_GT(rho_high, rho_low);   // ...but buys privacy
}

TEST(Integration, OptimizedLocalPerturbationBeatsRandomOnAverage) {
  const Dataset raw = sap::data::make_uci("Diabetes", 7);
  sap::data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  const Dataset normalized(raw.name(), norm.transform(raw.features()), raw.labels());
  Engine eng(71);
  sap::data::PartitionOptions popts;
  auto parts_a = sap::data::partition(normalized, 4, popts, eng);
  auto parts_b = parts_a;

  auto opts = proto::SapOptions::fast();
  opts.seed = 72;
  opts.optimize_local = true;
  proto::SapSession optimized(std::move(parts_a), opts);
  const auto res_opt = optimized.run();

  opts.optimize_local = false;
  proto::SapSession random(std::move(parts_b), opts);
  const auto res_rand = random.run();

  double rho_opt = 0.0, rho_rand = 0.0;
  for (const auto& p : res_opt.parties) rho_opt += p.local_rho;
  for (const auto& p : res_rand.parties) rho_rand += p.local_rho;
  EXPECT_GT(rho_opt, rho_rand);
}

}  // namespace
