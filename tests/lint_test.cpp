// sap_lint process-level tests.
//
// Runs the built linter (SAP_LINT_PATH, injected by CMake like SAP_CLI_PATH)
// against the in-repo fixture corpus (SAP_LINT_FIXTURES =
// tests/lint_fixtures): one violating and one conforming input per rule
// R1–R7, plus suppression handling. Assertions are on EXACT file:line and
// rule tags, so the diagnostics the tree relies on can never silently drift.
//
// The repo itself is linted by the separate `sap_lint` CTest entry (the tool
// run over ${CMAKE_SOURCE_DIR}), not here — these tests pin the tool's
// behavior, that one pins the tree's cleanliness.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace {

/// Run a command, capture all stdout/stderr, return the raw wait status.
int run_command(const std::string& command, std::string& output) {
  output.clear();
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (!pipe) return -1;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, pipe)) output += buf;
  return pclose(pipe);
}

int exit_code(int wait_status) {
  return WIFEXITED(wait_status) ? WEXITSTATUS(wait_status) : -1;
}

std::string lint_path() { return SAP_LINT_PATH; }
std::string fixtures() { return SAP_LINT_FIXTURES; }

struct LintRun {
  int exit = -1;
  std::string output;
  std::vector<std::string> diagnostics;  ///< the `file:line: error:` lines
};

/// Lint `target` (a fixture-relative path, or "" for the whole fixture set
/// named by `tree`).
LintRun lint(const std::string& tree, const std::string& target = "") {
  LintRun run;
  const std::string arg =
      fixtures() + "/" + tree + (target.empty() ? "" : "/" + target);
  run.exit = exit_code(run_command(lint_path() + " " + arg, run.output));
  std::size_t pos = 0;
  while (pos < run.output.size()) {
    std::size_t end = run.output.find('\n', pos);
    if (end == std::string::npos) end = run.output.size();
    const std::string line = run.output.substr(pos, end - pos);
    if (line.find(": error: ") != std::string::npos) run.diagnostics.push_back(line);
    pos = end + 1;
  }
  return run;
}

/// True when some diagnostic is anchored at exactly `file:line` and carries
/// rule tag `[tag]`.
bool has_diag(const LintRun& run, const std::string& file, int line,
              const std::string& tag) {
  const std::string anchor = file + ":" + std::to_string(line) + ": error: [" + tag + "]";
  for (const std::string& d : run.diagnostics)
    if (d.find(anchor) != std::string::npos) return true;
  return false;
}

// ---- whole-tree runs -----------------------------------------------------

TEST(SapLint, ConformingTreeIsClean) {
  const LintRun run = lint("conforming");
  EXPECT_EQ(run.exit, 0) << run.output;
  EXPECT_TRUE(run.diagnostics.empty()) << run.output;
}

TEST(SapLint, ViolatingTreeFailsWithEveryRuleRepresented) {
  const LintRun run = lint("violating");
  EXPECT_EQ(run.exit, 1) << run.output;
  for (const char* tag : {"R1/rng-discipline", "R2/determinism", "R3/codec-safety",
                          "R4/raii-locking", "R5/bench-hygiene", "R6/obs-purity",
                          "R7/bounded-retry", "suppression"}) {
    bool seen = false;
    for (const std::string& d : run.diagnostics)
      if (d.find(std::string("[") + tag + "]") != std::string::npos) seen = true;
    EXPECT_TRUE(seen) << "no diagnostic tagged [" << tag << "]\n" << run.output;
  }
}

TEST(SapLint, MissingPathIsUsageError) {
  std::string output;
  const int status =
      exit_code(run_command(lint_path() + " /no/such/path/anywhere", output));
  EXPECT_EQ(status, 2) << output;
}

// ---- R1: rng discipline --------------------------------------------------

TEST(SapLint, R1FlagsEveryForbiddenRngUseWithExactLines) {
  const std::string file = "src/app/uses_rand.cpp";
  const LintRun run = lint("violating", file);
  EXPECT_EQ(run.exit, 1) << run.output;
  EXPECT_EQ(run.diagnostics.size(), 5u) << run.output;
  EXPECT_TRUE(has_diag(run, file, 7, "R1/rng-discipline")) << run.output;   // random_device
  EXPECT_TRUE(has_diag(run, file, 8, "R1/rng-discipline")) << run.output;   // srand
  EXPECT_TRUE(has_diag(run, file, 9, "R1/rng-discipline")) << run.output;   // mt19937
  EXPECT_TRUE(has_diag(run, file, 10, "R1/rng-discipline")) << run.output;  // clock seed
  EXPECT_TRUE(has_diag(run, file, 11, "R1/rng-discipline")) << run.output;  // std::rand
}

TEST(SapLint, R1PermitsEntropySourcesInsideRngSubsystem) {
  const LintRun run = lint("conforming", "src/rng/uses_random_device.cpp");
  EXPECT_EQ(run.exit, 0) << run.output;
}

// ---- R2: determinism -----------------------------------------------------

TEST(SapLint, R2BansUnorderedContainersInProtocol) {
  const std::string file = "src/protocol/uses_unordered.cpp";
  const LintRun run = lint("violating", file);
  EXPECT_EQ(run.exit, 1) << run.output;
  EXPECT_TRUE(has_diag(run, file, 5, "R2/determinism")) << run.output;  // signature use
}

TEST(SapLint, R2FlagsIterationOverUnorderedElsewhere) {
  const std::string file = "src/app/iterates_unordered.cpp";
  const LintRun run = lint("violating", file);
  EXPECT_EQ(run.exit, 1) << run.output;
  EXPECT_EQ(run.diagnostics.size(), 1u) << run.output;  // declaration itself is fine
  EXPECT_TRUE(has_diag(run, file, 9, "R2/determinism")) << run.output;
}

TEST(SapLint, R2PermitsLookupsAndSortedSnapshots) {
  const LintRun run = lint("conforming", "src/app/ordered_iteration.cpp");
  EXPECT_EQ(run.exit, 0) << run.output;
}

TEST(SapLint, R2BansUnorderedContainersOnShardMergePaths) {
  // Outside src/protocol and src/net, but the file references ShardRouter —
  // the cluster extension applies the strict ban to the whole file.
  const std::string file = "bench/merge_unordered_tally.cpp";
  const LintRun run = lint("violating", file);
  EXPECT_EQ(run.exit, 1) << run.output;
  EXPECT_EQ(run.diagnostics.size(), 1u) << run.output;
  EXPECT_TRUE(has_diag(run, file, 12, "R2/determinism")) << run.output;
}

TEST(SapLint, R2PermitsOrderedContainersOnShardMergePaths) {
  const LintRun run = lint("conforming", "bench/merge_sorted_tally.cpp");
  EXPECT_EQ(run.exit, 0) << run.output;
}

// ---- R3: codec safety ----------------------------------------------------

TEST(SapLint, R3FlagsByteReinterpretationOutsideCodec) {
  const std::string file = "src/app/copies_bytes.cpp";
  const LintRun run = lint("violating", file);
  EXPECT_EQ(run.exit, 1) << run.output;
  EXPECT_EQ(run.diagnostics.size(), 2u) << run.output;
  EXPECT_TRUE(has_diag(run, file, 7, "R3/codec-safety")) << run.output;  // memcpy
  EXPECT_TRUE(has_diag(run, file, 8, "R3/codec-safety")) << run.output;  // reinterpret_cast
}

TEST(SapLint, R3PermitsCodecBoundaryFiles) {
  const LintRun run = lint("conforming", "src/net/frame.cpp");
  EXPECT_EQ(run.exit, 0) << run.output;
}

// ---- R4: RAII locking ----------------------------------------------------

TEST(SapLint, R4FlagsBareLockCallsAndRawStdMutex) {
  const std::string file = "src/app/bare_lock.cpp";
  const LintRun run = lint("violating", file);
  EXPECT_EQ(run.exit, 1) << run.output;
  EXPECT_EQ(run.diagnostics.size(), 3u) << run.output;
  EXPECT_TRUE(has_diag(run, file, 5, "R4/raii-locking")) << run.output;   // raw std::mutex
  EXPECT_TRUE(has_diag(run, file, 9, "R4/raii-locking")) << run.output;   // .lock()
  EXPECT_TRUE(has_diag(run, file, 11, "R4/raii-locking")) << run.output;  // .unlock()
}

TEST(SapLint, R4PermitsRaiiGuards) {
  const LintRun run = lint("conforming", "src/app/raii_lock.cpp");
  EXPECT_EQ(run.exit, 0) << run.output;
}

// ---- R5: bench hygiene ---------------------------------------------------

TEST(SapLint, R5FlagsRogueBenchEmitters) {
  const std::string file = "bench/rogue_emitter.cpp";
  const LintRun run = lint("violating", file);
  EXPECT_EQ(run.exit, 1) << run.output;
  EXPECT_TRUE(has_diag(run, file, 3, "R5/bench-hygiene")) << run.output;  // <fstream>
  EXPECT_TRUE(has_diag(run, file, 6, "R5/bench-hygiene")) << run.output;  // ofstream
}

TEST(SapLint, R5PermitsBenchUtilItself) {
  const LintRun run = lint("conforming", "bench/bench_util.hpp");
  EXPECT_EQ(run.exit, 0) << run.output;
}

// ---- R6: obs purity ------------------------------------------------------

TEST(SapLint, R6FlagsObsAndTimersInsideNumericKernels) {
  const std::string file = "src/optimize/instrumented_kernel.cpp";
  const LintRun run = lint("violating", file);
  EXPECT_EQ(run.exit, 1) << run.output;
  EXPECT_EQ(run.diagnostics.size(), 3u) << run.output;
  EXPECT_TRUE(has_diag(run, file, 3, "R6/obs-purity")) << run.output;  // obs include
  EXPECT_TRUE(has_diag(run, file, 7, "R6/obs-purity")) << run.output;  // Stopwatch
  EXPECT_TRUE(has_diag(run, file, 8, "R6/obs-purity")) << run.output;  // sap::obs use
}

TEST(SapLint, R6PermitsStageBoundaryInstrumentation) {
  // The same Stopwatch + histogram record is FINE in src/net — stages are
  // where measurement belongs.
  const LintRun run = lint("conforming", "src/net/stage_timed.cpp");
  EXPECT_EQ(run.exit, 0) << run.output;
}

TEST(SapLint, R6PermitsPureKernels) {
  const LintRun run = lint("conforming", "src/classify/pure_kernel.cpp");
  EXPECT_EQ(run.exit, 0) << run.output;
}

// ---- R7: bounded retry ---------------------------------------------------

TEST(SapLint, R7FlagsUnboundedRequestLoops) {
  const std::string file = "src/net/unbounded_probe.cpp";
  const LintRun run = lint("violating", file);
  EXPECT_EQ(run.exit, 1) << run.output;
  EXPECT_EQ(run.diagnostics.size(), 1u) << run.output;
  // Anchored at the loop header — that is the line the bound belongs on.
  EXPECT_TRUE(has_diag(run, file, 11, "R7/bounded-retry")) << run.output;
}

TEST(SapLint, R7PermitsBudgetAndDeadlineBoundedLoops) {
  const LintRun run = lint("conforming", "src/net/bounded_probe.cpp");
  EXPECT_EQ(run.exit, 0) << run.output;
}

// ---- suppressions --------------------------------------------------------

TEST(SapLint, ReasonedSuppressionsWaiveFindings) {
  const LintRun run = lint("conforming", "src/app/suppressed_codec.cpp");
  EXPECT_EQ(run.exit, 0) << run.output;
  EXPECT_TRUE(run.diagnostics.empty()) << run.output;
}

TEST(SapLint, UnjustifiedSuppressionIsFlaggedAndWaivesNothing) {
  const std::string file = "src/app/bad_suppression.cpp";
  const LintRun run = lint("violating", file);
  EXPECT_EQ(run.exit, 1) << run.output;
  EXPECT_EQ(run.diagnostics.size(), 4u) << run.output;
  // allow() without `-- reason` is its own diagnostic, and the R3 finding
  // it tried to waive still fires on the next code line.
  EXPECT_TRUE(has_diag(run, file, 7, "suppression")) << run.output;
  EXPECT_TRUE(has_diag(run, file, 8, "R3/codec-safety")) << run.output;
  // A reasoned allow() naming a rule that does not exist: flagged, and the
  // real finding on that line still fires.
  EXPECT_TRUE(has_diag(run, file, 12, "suppression")) << run.output;
  EXPECT_TRUE(has_diag(run, file, 12, "R3/codec-safety")) << run.output;
}

// ---- the repo itself must be clean ---------------------------------------

TEST(SapLint, RepositoryTreeIsClean) {
  std::string output;
  const int status =
      exit_code(run_command(lint_path() + " " + SAP_LINT_REPO_ROOT, output));
  EXPECT_EQ(status, 0) << output;
}

}  // namespace
