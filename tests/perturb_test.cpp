// Unit + property tests for sap::perturb: the geometric perturbation
// G(X) = RX + Psi + Delta and the space-adaptor algebra of paper §3.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "linalg/orthogonal.hpp"
#include "linalg/stats.hpp"
#include "perturb/geometric.hpp"
#include "perturb/space_adaptor.hpp"
#include "rng/rng.hpp"

namespace {

using sap::linalg::Matrix;
using sap::linalg::Vector;
using sap::perturb::GeometricPerturbation;
using sap::perturb::SpaceAdaptor;
using sap::rng::Engine;

Matrix random_data(std::size_t d, std::size_t n, Engine& eng) {
  return Matrix::generate(d, n, [&] { return eng.uniform(); });
}

TEST(Geometric, FusedApplyBitIdenticalToNoiselessPlusNoisePass) {
  // The fusion contract (geometric.hpp): apply_into == apply_noiseless then
  // one row-major noise sweep, bit for bit — the noise draw order is the
  // RNG stream contract, the translation rides the GEMM epilogue.
  Engine eng(40);
  const auto g = GeometricPerturbation::random(34, 0.2, eng);
  const Matrix x = random_data(34, 57, eng);

  Engine noise_a(7), noise_b(7);
  Matrix fused;
  g.apply_into(x, fused, noise_a);

  Matrix ref = g.apply_noiseless(x);
  for (auto& v : ref.data()) v += noise_b.normal(0.0, g.noise_sigma());

  EXPECT_TRUE(fused == ref);
  // And apply() is the same map (fresh engine at the same state).
  Engine noise_c(7);
  EXPECT_TRUE(g.apply(x, noise_c) == ref);
}

TEST(Geometric, FusedNoiselessApplyMatchesNaiveKernelPlusTranslation) {
  Engine eng(41);
  const auto g = GeometricPerturbation::random(9, 0.0, eng);
  const Matrix x = random_data(9, 23, eng);
  Matrix ref = sap::linalg::matmul_naive(g.rotation(), x);
  for (std::size_t i = 0; i < ref.rows(); ++i)
    for (auto& v : ref.row(i)) v += g.translation()[i];
  EXPECT_TRUE(g.apply_noiseless(x) == ref);
}

TEST(Geometric, ApplyIntoReshapesStaleBuffer) {
  Engine eng(42);
  const auto g = GeometricPerturbation::random(4, 0.0, eng);
  Matrix y(2, 3, 99.0);  // wrong shape AND stale contents
  Engine noise(1);
  g.apply_into(random_data(4, 6, eng), y, noise);
  EXPECT_EQ(y.rows(), 4u);
  EXPECT_EQ(y.cols(), 6u);
  const Matrix x2 = random_data(4, 6, eng);
  Matrix y2 = y;  // reuse a right-shaped buffer: must fully overwrite
  g.apply_into(x2, y2, noise);
  EXPECT_TRUE(y2 == g.apply_noiseless(x2));
}

TEST(Geometric, RandomPerturbationHasValidParameters) {
  Engine eng(1);
  const auto g = GeometricPerturbation::random(5, 0.1, eng);
  EXPECT_EQ(g.dims(), 5u);
  EXPECT_LT(sap::linalg::orthogonality_defect(g.rotation()), 1e-9);
  for (double t : g.translation()) {
    EXPECT_GE(t, -1.0);
    EXPECT_LT(t, 1.0);
  }
  EXPECT_DOUBLE_EQ(g.noise_sigma(), 0.1);
}

TEST(Geometric, NonOrthogonalRotationRejected) {
  Matrix bad{{1.0, 0.5}, {0.0, 1.0}};
  EXPECT_THROW(GeometricPerturbation(bad, Vector{0.0, 0.0}, 0.0), sap::Error);
}

TEST(Geometric, NegativeSigmaRejected) {
  Engine eng(2);
  const Matrix r = sap::linalg::random_orthogonal(3, eng);
  EXPECT_THROW(GeometricPerturbation(r, Vector{0, 0, 0}, -0.5), sap::Error);
}

TEST(Geometric, NoiselessRoundTripIsExact) {
  Engine eng(3);
  const auto g = GeometricPerturbation::random(4, 0.0, eng);
  const Matrix x = random_data(4, 50, eng);
  const Matrix y = g.apply_noiseless(x);
  EXPECT_TRUE(g.invert(y).approx_equal(x, 1e-10));
}

TEST(Geometric, ApplyWithZeroSigmaEqualsNoiseless) {
  Engine eng(4);
  const auto g = GeometricPerturbation::random(4, 0.0, eng);
  const Matrix x = random_data(4, 20, eng);
  Engine noise(99);
  EXPECT_TRUE(g.apply(x, noise).approx_equal(g.apply_noiseless(x), 0.0));
}

TEST(Geometric, NoiseMagnitudeTracksSigma) {
  Engine eng(5);
  const double sigma = 0.25;
  const auto g = GeometricPerturbation::random(3, sigma, eng);
  const Matrix x = random_data(3, 4000, eng);
  Engine noise(7);
  const Matrix y = g.apply(x, noise);
  Matrix residual = y;
  residual -= g.apply_noiseless(x);
  // Residual is iid N(0, sigma^2): per-row stddev should be close to sigma.
  const Vector sd = sap::linalg::row_stddev(residual);
  for (double s : sd) EXPECT_NEAR(s, sigma, 0.02);
}

class DistancePreservation : public ::testing::TestWithParam<int> {};

TEST_P(DistancePreservation, RotationPlusTranslationPreservesDistances) {
  // The geometric-invariance property that keeps KNN/SVM accuracy intact:
  // pairwise distances are exactly preserved by the noiseless perturbation.
  const int d = GetParam();
  Engine eng(100 + d);
  const auto g = GeometricPerturbation::random(d, 0.0, eng);
  const Matrix x = random_data(d, 12, eng);
  const Matrix y = g.apply_noiseless(x);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = i + 1; j < 12; ++j) {
      EXPECT_NEAR(sap::linalg::distance(x.col(i), x.col(j)),
                  sap::linalg::distance(y.col(i), y.col(j)), 1e-10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, DistancePreservation, ::testing::Values(2, 3, 5, 8, 13, 21));

TEST(Geometric, TranslationMatrixIsRankOne) {
  const Vector t{1.0, -2.0, 0.5};
  const Matrix psi = sap::perturb::translation_matrix(t, 4);
  EXPECT_EQ(psi.rows(), 3u);
  EXPECT_EQ(psi.cols(), 4u);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_DOUBLE_EQ(psi(0, j), 1.0);
    EXPECT_DOUBLE_EQ(psi(1, j), -2.0);
    EXPECT_DOUBLE_EQ(psi(2, j), 0.5);
  }
}

TEST(Geometric, PrecomposeRotationKeepsOrthogonality) {
  Engine eng(6);
  auto g = GeometricPerturbation::random(4, 0.0, eng);
  const Matrix extra = sap::linalg::random_orthogonal(4, eng);
  g.precompose_rotation(extra);
  EXPECT_LT(sap::linalg::orthogonality_defect(g.rotation()), 1e-8);
}

// ------------------------------------------------------------ SpaceAdaptor

class AdaptorProperty : public ::testing::TestWithParam<int> {};

TEST_P(AdaptorProperty, PaperIdentityHolds) {
  // §3: Y_{i->t} = R_it Y_i + Psi_it must equal R_t X + Psi_t + R_it Delta_i
  // — i.e. the target-space image inheriting the source noise.
  const int d = GetParam();
  Engine eng(200 + d);
  const double sigma = 0.15;
  const auto g_i = GeometricPerturbation::random(d, sigma, eng);
  const auto g_t = GeometricPerturbation::random(d, 0.0, eng);
  const Matrix x = random_data(d, 40, eng);

  // Materialize Y_i with explicit noise so we can check the identity exactly.
  const Matrix y_clean = g_i.apply_noiseless(x);
  Engine noise(11);
  Matrix delta(d, 40);
  for (auto& v : delta.data()) v = noise.normal(0.0, sigma);
  Matrix y_i = y_clean;
  y_i += delta;

  const SpaceAdaptor a = SpaceAdaptor::between(g_i, g_t);
  const Matrix adapted = a.apply(y_i);

  Matrix expected = g_t.apply_noiseless(x);
  expected += a.rotation() * delta;  // complementary noise R_it Delta_i
  EXPECT_TRUE(adapted.approx_equal(expected, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Dims, AdaptorProperty, ::testing::Values(2, 3, 5, 9, 16));

TEST(Adaptor, NoiselessAdaptationIsExactTargetImage) {
  Engine eng(7);
  const auto g_i = GeometricPerturbation::random(5, 0.0, eng);
  const auto g_t = GeometricPerturbation::random(5, 0.0, eng);
  const Matrix x = random_data(5, 30, eng);
  const SpaceAdaptor a = SpaceAdaptor::between(g_i, g_t);
  EXPECT_TRUE(a.apply(g_i.apply_noiseless(x)).approx_equal(g_t.apply_noiseless(x), 1e-9));
}

TEST(Adaptor, SelfAdaptationIsIdentity) {
  Engine eng(8);
  const auto g = GeometricPerturbation::random(4, 0.0, eng);
  const SpaceAdaptor a = SpaceAdaptor::between(g, g);
  EXPECT_TRUE(a.rotation().approx_equal(Matrix::identity(4), 1e-9));
  for (double v : a.translation()) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(Adaptor, RotationAdaptorIsOrthogonal) {
  Engine eng(9);
  const auto g_i = GeometricPerturbation::random(6, 0.1, eng);
  const auto g_t = GeometricPerturbation::random(6, 0.0, eng);
  const SpaceAdaptor a = SpaceAdaptor::between(g_i, g_t);
  EXPECT_LT(sap::linalg::orthogonality_defect(a.rotation()), 1e-9);
}

TEST(Adaptor, CompositionMatchesDirectAdaptor) {
  Engine eng(10);
  const auto g_a = GeometricPerturbation::random(4, 0.0, eng);
  const auto g_b = GeometricPerturbation::random(4, 0.0, eng);
  const auto g_c = GeometricPerturbation::random(4, 0.0, eng);
  const SpaceAdaptor ab = SpaceAdaptor::between(g_a, g_b);
  const SpaceAdaptor bc = SpaceAdaptor::between(g_b, g_c);
  const SpaceAdaptor ac = SpaceAdaptor::between(g_a, g_c);
  const SpaceAdaptor composed = bc.after(ab);
  EXPECT_TRUE(composed.rotation().approx_equal(ac.rotation(), 1e-9));
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(composed.translation()[i], ac.translation()[i], 1e-9);
}

TEST(Adaptor, FiveHundredCompositionChainStaysOrthogonal) {
  // The Contribute path reuses adaptors across arbitrarily many batches, so
  // long after() chains must never drift past the constructor's 1e-7
  // orthogonality gate (every after() result passes through it — surviving
  // the chain IS the drift guarantee). d=34 matches the paper's widest
  // dataset (Ionosphere).
  Engine eng(77);
  constexpr std::size_t kDims = 34;
  auto prev = GeometricPerturbation::random(kDims, 0.0, eng);
  const auto first = prev;
  auto next = GeometricPerturbation::random(kDims, 0.0, eng);
  SpaceAdaptor chain = SpaceAdaptor::between(prev, next);
  prev = next;
  for (int step = 1; step < 500; ++step) {
    next = GeometricPerturbation::random(kDims, 0.0, eng);
    chain = SpaceAdaptor::between(prev, next).after(chain);
    prev = next;
  }
  EXPECT_LT(sap::linalg::orthogonality_defect(chain.rotation()), 1e-7);

  // The chain still agrees with the direct first->last adaptor (tolerance
  // covers 500 accumulated matrix products).
  const SpaceAdaptor direct = SpaceAdaptor::between(first, prev);
  const Matrix y = random_data(kDims, 16, eng);
  EXPECT_TRUE(chain.apply(y).approx_equal(direct.apply(y), 1e-6));
}

TEST(Adaptor, CompositionSnapsDriftBackBelowHalfTheGate) {
  // Inject a drift just UNDER the constructor gate (so the adaptor is
  // legal) but over the 0.5e-7 re-orthonormalization trigger: one after()
  // must snap the product back to numerically-exact orthogonality instead
  // of letting the next composition push it over the gate.
  Engine eng(78);
  const std::size_t d = 8;
  Matrix r = sap::linalg::random_orthogonal(d, eng);
  // Nudge one entry until the defect sits between the snap trigger (0.5e-7)
  // and the constructor gate (1e-7); the defect grows ~linearly in the
  // nudge, so the 1e-8 steps cannot overshoot the gate.
  while (sap::linalg::orthogonality_defect(r) < 0.6e-7) r(0, 1) += 1e-8;
  ASSERT_GT(sap::linalg::orthogonality_defect(r), 0.5e-7);
  ASSERT_LT(sap::linalg::orthogonality_defect(r), 1e-7);
  const SpaceAdaptor drifted(r, Vector(d, 0.0));
  const SpaceAdaptor identity(Matrix::identity(d), Vector(d, 0.0));
  const SpaceAdaptor snapped = drifted.after(identity);
  EXPECT_LT(sap::linalg::orthogonality_defect(snapped.rotation()), 1e-12);
  // The snap is a correction, not a replacement: the rotation barely moves.
  EXPECT_TRUE(snapped.rotation().approx_equal(drifted.rotation(), 1e-6));
}

TEST(Adaptor, ReOrthonormalizeRestoresOrthogonality) {
  Engine eng(79);
  const std::size_t d = 12;
  const Matrix q = sap::linalg::random_orthogonal(d, eng);
  Matrix drifted = q;
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = 0; j < d; ++j) drifted(i, j) += 1e-6 * eng.normal();
  const Matrix snapped = sap::linalg::re_orthonormalize(drifted);
  EXPECT_LT(sap::linalg::orthogonality_defect(snapped), 1e-12);
  EXPECT_TRUE(snapped.approx_equal(q, 1e-4));  // stays near the original
}

TEST(Adaptor, DimensionMismatchThrows) {
  Engine eng(11);
  const auto g3 = GeometricPerturbation::random(3, 0.0, eng);
  const auto g4 = GeometricPerturbation::random(4, 0.0, eng);
  EXPECT_THROW(SpaceAdaptor::between(g3, g4), sap::Error);
}

TEST(Adaptor, SerializationRoundTrip) {
  Engine eng(12);
  const auto g_i = GeometricPerturbation::random(5, 0.1, eng);
  const auto g_t = GeometricPerturbation::random(5, 0.0, eng);
  const SpaceAdaptor a = SpaceAdaptor::between(g_i, g_t);
  const auto wire = a.serialize();
  const SpaceAdaptor back = SpaceAdaptor::deserialize(wire);
  EXPECT_TRUE(back.rotation().approx_equal(a.rotation(), 0.0));
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_DOUBLE_EQ(back.translation()[i], a.translation()[i]);
}

TEST(Adaptor, MalformedWireRejected) {
  std::vector<double> junk{3.0, 1.0, 2.0};  // says d=3 but far too short
  EXPECT_THROW(SpaceAdaptor::deserialize(junk), sap::Error);
  EXPECT_THROW(SpaceAdaptor::deserialize(std::vector<double>{}), sap::Error);
}

class SerializationSweep : public ::testing::TestWithParam<int> {};

TEST_P(SerializationSweep, PerturbationAndAdaptorRoundTripAcrossDims) {
  const auto d = static_cast<std::size_t>(GetParam());
  Engine eng(4000 + d);
  const auto g = GeometricPerturbation::random(d, 0.05 * static_cast<double>(d), eng);
  const auto g_back = GeometricPerturbation::deserialize(g.serialize());
  EXPECT_TRUE(g_back.rotation().approx_equal(g.rotation(), 0.0));
  EXPECT_EQ(g_back.translation(), g.translation());
  EXPECT_DOUBLE_EQ(g_back.noise_sigma(), g.noise_sigma());

  const auto g_t = GeometricPerturbation::random(d, 0.0, eng);
  const SpaceAdaptor a = SpaceAdaptor::between(g, g_t);
  const SpaceAdaptor a_back = SpaceAdaptor::deserialize(a.serialize());
  // Deserialized adaptor must act identically on data.
  const Matrix y = g.apply_noiseless(random_data(d, 7, eng));
  EXPECT_TRUE(a_back.apply(y).approx_equal(a.apply(y), 0.0));
}

INSTANTIATE_TEST_SUITE_P(Dims, SerializationSweep, ::testing::Values(1, 2, 4, 8, 16, 34));

TEST(Adaptor, AdaptationHidesSourceSpaceFromDistanceView) {
  // Distances in the adapted data equal distances in the source perturbed
  // data (both are rigid images of X up to the same noise), so the miner's
  // utility is unaffected by which source space the data came from.
  Engine eng(13);
  const auto g_i = GeometricPerturbation::random(4, 0.0, eng);
  const auto g_t = GeometricPerturbation::random(4, 0.0, eng);
  const Matrix x = random_data(4, 10, eng);
  const Matrix y = g_i.apply_noiseless(x);
  const Matrix z = SpaceAdaptor::between(g_i, g_t).apply(y);
  for (std::size_t i = 0; i < 10; ++i)
    for (std::size_t j = i + 1; j < 10; ++j)
      EXPECT_NEAR(sap::linalg::distance(y.col(i), y.col(j)),
                  sap::linalg::distance(z.col(i), z.col(j)), 1e-10);
}

}  // namespace
