// Unit + property tests for sap::privacy: the VoD privacy metric, FastICA,
// the three attack models, and the attack-suite evaluator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "data/normalize.hpp"
#include "data/synthetic.hpp"
#include "linalg/orthogonal.hpp"
#include "linalg/stats.hpp"
#include "perturb/geometric.hpp"
#include "privacy/attacks.hpp"
#include "privacy/evaluator.hpp"
#include "privacy/fastica.hpp"
#include "privacy/metric.hpp"
#include "rng/rng.hpp"

namespace {

using sap::linalg::Matrix;
using sap::linalg::Vector;
using sap::perturb::GeometricPerturbation;
using sap::rng::Engine;

/// Non-Gaussian independent sources (uniform columns) — ICA's best case.
Matrix uniform_sources(std::size_t d, std::size_t n, Engine& eng) {
  return Matrix::generate(d, n, [&] { return eng.uniform(); });
}

// ------------------------------------------------------------ metric

TEST(Metric, PerfectReconstructionHasZeroPrivacy) {
  Engine eng(1);
  const Matrix x = uniform_sources(3, 100, eng);
  const Vector p = sap::privacy::column_privacy(x, x);
  for (double v : p) EXPECT_NEAR(v, 0.0, 1e-12);
  EXPECT_NEAR(sap::privacy::min_privacy_guarantee(x, x), 0.0, 1e-12);
}

TEST(Metric, ConstantOffsetIsStillZeroPrivacy) {
  // std(X - X_hat) ignores constant shifts: an estimate off by a constant
  // reveals the column shape exactly, which the metric treats as disclosure.
  Engine eng(2);
  const Matrix x = uniform_sources(2, 50, eng);
  Matrix shifted = x;
  for (auto& v : shifted.data()) v += 5.0;
  EXPECT_NEAR(sap::privacy::min_privacy_guarantee(x, shifted), 0.0, 1e-12);
}

TEST(Metric, IndependentGuessGivesSqrtTwoPrivacy) {
  // An uninformed guess with matched moments is ~sqrt(2) column stddevs off.
  Engine eng(3);
  const std::size_t n = 20000;
  Matrix x(1, n), guess(1, n);
  for (std::size_t i = 0; i < n; ++i) {
    x(0, i) = eng.normal();
    guess(0, i) = eng.normal();
  }
  EXPECT_NEAR(sap::privacy::min_privacy_guarantee(x, guess), std::sqrt(2.0), 0.05);
}

TEST(Metric, MinTakenAcrossColumns) {
  Engine eng(4);
  const Matrix x = uniform_sources(2, 200, eng);
  Matrix est = x;  // column 0 perfectly known, column 1 garbage
  for (std::size_t j = 0; j < 200; ++j) est(1, j) = eng.uniform();
  const double rho = sap::privacy::min_privacy_guarantee(x, est);
  EXPECT_NEAR(rho, 0.0, 1e-12);
}

TEST(Metric, ShapeMismatchThrows) {
  Matrix a(2, 10), b(3, 10);
  EXPECT_THROW(sap::privacy::column_privacy(a, b), sap::Error);
}

TEST(Metric, ConstantOriginalColumnExcludedFromGuarantee) {
  // A locally constant column carries no distributional information (its
  // value is pinned by the public normalization bounds), so it must not
  // drive rho to zero even when "reconstructed" exactly.
  Matrix x(2, 10, 1.0);
  for (std::size_t j = 0; j < 10; ++j) x(1, j) = static_cast<double>(j);
  Matrix est = x;  // exact match INCLUDING the constant column
  const Vector p = sap::privacy::column_privacy(x, est);
  EXPECT_TRUE(std::isinf(p[0]));  // excluded, not zero
  EXPECT_NEAR(p[1], 0.0, 1e-12);
  // The guarantee is driven by the varying column only.
  EXPECT_NEAR(sap::privacy::min_privacy_guarantee(x, est), 0.0, 1e-12);
}

TEST(Metric, AllConstantDataThrows) {
  Matrix x(2, 10, 1.0);
  EXPECT_THROW(sap::privacy::min_privacy_guarantee(x, x), sap::Error);
}

TEST(Metric, CandidatePoolExcludesConstantColumns) {
  sap::rng::Engine eng(77);
  Matrix x(2, 40, 0.0);
  for (std::size_t j = 0; j < 40; ++j) x(1, j) = eng.uniform();
  const Vector p = sap::privacy::candidate_pool_privacy(x, x);
  EXPECT_TRUE(std::isinf(p[0]));
  EXPECT_NEAR(p[1], 0.0, 1e-9);
}

// ------------------------------------------------------------ FastICA

TEST(FastIca, RecoversIndependentUniformSources) {
  Engine eng(5);
  const std::size_t d = 4, n = 3000;
  const Matrix s = uniform_sources(d, n, eng);
  const Matrix r = sap::linalg::random_orthogonal(d, eng);
  const Matrix y = r * s;

  const auto res = sap::privacy::fast_ica(y, {.max_iterations = 400, .tolerance = 1e-8}, eng);
  EXPECT_TRUE(res.converged);

  // Every true source should be highly correlated with some recovered
  // component (up to sign/permutation).
  for (std::size_t j = 0; j < d; ++j) {
    double best = 0.0;
    for (std::size_t c = 0; c < res.sources.rows(); ++c)
      best = std::max(best, std::abs(sap::linalg::pearson(s.row(j), res.sources.row(c))));
    EXPECT_GT(best, 0.95) << "source " << j << " not recovered";
  }
}

TEST(FastIca, SourcesComeBackWhitened) {
  Engine eng(6);
  const Matrix s = uniform_sources(3, 2000, eng);
  const Matrix r = sap::linalg::random_orthogonal(3, eng);
  const auto res = sap::privacy::fast_ica(r * s, {}, eng);
  const Matrix cov = sap::linalg::covariance_cols(res.sources);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(cov(i, i), 1.0, 0.05);
}

TEST(FastIca, GaussianSourcesAreUnidentifiable) {
  // With Gaussian sources the ICA model is unidentifiable; recovered
  // components should NOT align well with the originals.
  Engine eng(7);
  const std::size_t d = 3, n = 4000;
  Matrix s = Matrix::generate(d, n, [&] { return eng.normal(); });
  const Matrix r = sap::linalg::random_orthogonal(d, eng);
  const auto res = sap::privacy::fast_ica(r * s, {}, eng);
  double worst_best = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    double best = 0.0;
    for (std::size_t c = 0; c < res.sources.rows(); ++c)
      best = std::max(best, std::abs(sap::linalg::pearson(s.row(j), res.sources.row(c))));
    worst_best = std::max(worst_best, best);
  }
  // At least one direction should stay far from perfectly recovered.
  double min_best = 1.0;
  for (std::size_t j = 0; j < d; ++j) {
    double best = 0.0;
    for (std::size_t c = 0; c < res.sources.rows(); ++c)
      best = std::max(best, std::abs(sap::linalg::pearson(s.row(j), res.sources.row(c))));
    min_best = std::min(min_best, best);
  }
  EXPECT_LT(min_best, 0.9);
}

TEST(FastIca, TooFewObservationsThrows) {
  Engine eng(8);
  Matrix y(3, 4);
  EXPECT_THROW(sap::privacy::fast_ica(y, {}, eng), sap::Error);
}

// ------------------------------------------------------------ attacks

TEST(NaiveAttack, DefeatedByStrongRotationButNotByWeakOne) {
  Engine eng(9);
  const Matrix x = uniform_sources(4, 500, eng);

  // Weak rotation: near-identity (small Givens angle) — naive read-off
  // still correlates strongly with the original columns.
  const Matrix weak = sap::linalg::givens(4, 0, 1, 0.1);
  const Matrix y_weak = weak * x;
  const Vector p_weak = sap::privacy::candidate_pool_privacy(x, y_weak);

  // Strong mixing rotation.
  const Matrix strong = sap::linalg::random_orthogonal(4, eng);
  const Matrix y_strong = strong * x;
  const Vector p_strong = sap::privacy::candidate_pool_privacy(x, y_strong);

  const double min_weak = *std::min_element(p_weak.begin(), p_weak.end());
  const double min_strong = *std::min_element(p_strong.begin(), p_strong.end());
  EXPECT_LT(min_weak, 0.25);  // weak rotation leaks
  EXPECT_GT(min_strong, min_weak);
}

TEST(NaiveAttack, IdentityPerturbationHasZeroPrivacy) {
  Engine eng(10);
  const Matrix x = uniform_sources(3, 300, eng);
  const Vector p = sap::privacy::candidate_pool_privacy(x, x);
  for (double v : p) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(IcaAttack, BreaksPureRotationOnNonGaussianData) {
  Engine eng(11);
  const Matrix x = uniform_sources(4, 2500, eng);
  const Matrix r = sap::linalg::random_orthogonal(4, eng);
  const Matrix y = r * x;

  sap::privacy::IcaReconstructionAttack attack({.max_iterations = 400, .tolerance = 1e-8});
  sap::privacy::AttackContext ctx;
  ctx.perturbed = &y;
  const auto rec = attack.reconstruct(ctx, eng);
  ASSERT_EQ(rec.kind, sap::privacy::Reconstruction::Kind::kCandidatePool);
  const Vector p = sap::privacy::candidate_pool_privacy(x, rec.estimate);
  const double rho = *std::min_element(p.begin(), p.end());
  // ICA should reconstruct at least one column almost exactly.
  EXPECT_LT(rho, 0.35);
}

TEST(IcaAttack, NoiseAdditionRestoresPrivacy) {
  Engine eng(12);
  const Matrix x = uniform_sources(4, 2500, eng);
  auto g = GeometricPerturbation::random(4, 0.35, eng);
  Engine noise(13);
  const Matrix y = g.apply(x, noise);

  sap::privacy::IcaReconstructionAttack attack({.max_iterations = 300, .tolerance = 1e-7});
  sap::privacy::AttackContext ctx;
  ctx.perturbed = &y;
  const auto rec = attack.reconstruct(ctx, eng);
  const Vector p = sap::privacy::candidate_pool_privacy(x, rec.estimate);
  const double rho_noisy = *std::min_element(p.begin(), p.end());

  const Matrix y_clean = g.apply_noiseless(x);
  const auto rec_clean = attack.reconstruct(
      [&] {
        sap::privacy::AttackContext c2;
        c2.perturbed = &y_clean;
        return c2;
      }(),
      eng);
  const Vector p_clean = sap::privacy::candidate_pool_privacy(x, rec_clean.estimate);
  const double rho_clean = *std::min_element(p_clean.begin(), p_clean.end());
  EXPECT_GT(rho_noisy, rho_clean);
}

TEST(KnownInputAttack, ExactlyInvertsNoiselessPerturbation) {
  Engine eng(14);
  const Matrix x = uniform_sources(4, 200, eng);
  const auto g = GeometricPerturbation::random(4, 0.0, eng);
  const Matrix y = g.apply_noiseless(x);

  sap::privacy::KnownInputAttack attack;
  sap::privacy::AttackContext ctx;
  ctx.perturbed = &y;
  ctx.known_indices = {0, 1, 2, 3, 4, 5};
  ctx.known_originals = Matrix(4, 6);
  for (std::size_t j = 0; j < 6; ++j) {
    const Vector col = x.col(j);
    ctx.known_originals.set_col(j, col);
  }
  const auto rec = attack.reconstruct(ctx, eng);
  ASSERT_EQ(rec.kind, sap::privacy::Reconstruction::Kind::kAligned);
  // Without noise the known-input attack is devastating: rho ~ 0.
  EXPECT_LT(sap::privacy::min_privacy_guarantee(x, rec.estimate), 0.05);
}

TEST(KnownInputAttack, NoiseLimitsReconstruction) {
  Engine eng(15);
  const Matrix x = uniform_sources(4, 400, eng);
  const double sigma = 0.3;
  const auto g = GeometricPerturbation::random(4, sigma, eng);
  Engine noise(16);
  const Matrix y = g.apply(x, noise);

  sap::privacy::KnownInputAttack attack;
  sap::privacy::AttackContext ctx;
  ctx.perturbed = &y;
  ctx.known_indices = {0, 1, 2, 3, 4, 5, 6, 7};
  ctx.known_originals = Matrix(4, 8);
  for (std::size_t j = 0; j < 8; ++j) {
    const Vector col = x.col(j);
    ctx.known_originals.set_col(j, col);
  }
  const auto rec = attack.reconstruct(ctx, eng);
  const double rho = sap::privacy::min_privacy_guarantee(x, rec.estimate);
  // Residual privacy should be on the order of sigma / column-std
  // (column std of U[0,1] is ~0.29).
  EXPECT_GT(rho, 0.5);
}

TEST(SpectralAttack, BreaksBareRotationOnAnisotropicData) {
  // Second-order attack: needs only distinct covariance eigenvalues, not
  // non-Gaussianity. Gaussian data with anisotropic covariance is exactly
  // the case ICA cannot crack but PCA can.
  Engine eng(31);
  const std::size_t d = 4, n = 3000;
  Matrix x(d, n);
  const double scales[4] = {4.0, 2.0, 1.0, 0.5};  // distinct eigenvalues
  for (std::size_t j = 0; j < d; ++j)
    for (std::size_t i = 0; i < n; ++i) x(j, i) = eng.normal(0.0, scales[j]);
  const Matrix r = sap::linalg::random_orthogonal(d, eng);
  const Matrix y = r * x;

  sap::privacy::SpectralAttack attack;
  sap::privacy::AttackContext ctx;
  ctx.perturbed = &y;
  const auto rec = attack.reconstruct(ctx, eng);
  ASSERT_EQ(rec.kind, sap::privacy::Reconstruction::Kind::kCandidatePool);
  const Vector p = sap::privacy::candidate_pool_privacy(x, rec.estimate);
  // The dominant axes are recovered almost exactly.
  const double rho = *std::min_element(p.begin(), p.end());
  EXPECT_LT(rho, 0.2);
}

TEST(SpectralAttack, BluntedByIsotropicData) {
  // With (near-)equal eigenvalues the eigenbasis is arbitrary: the spectral
  // attack learns nothing about the rotation.
  Engine eng(32);
  const std::size_t d = 4, n = 3000;
  Matrix x = Matrix::generate(d, n, [&] { return eng.normal(); });
  const Matrix r = sap::linalg::random_orthogonal(d, eng);
  const Matrix y = r * x;

  sap::privacy::SpectralAttack attack;
  sap::privacy::AttackContext ctx;
  ctx.perturbed = &y;
  const auto rec = attack.reconstruct(ctx, eng);
  const Vector p = sap::privacy::candidate_pool_privacy(x, rec.estimate);
  const double rho = *std::min_element(p.begin(), p.end());
  EXPECT_GT(rho, 0.5);
}

TEST(SpectralAttack, NoiseReducesRecovery) {
  Engine eng(33);
  const std::size_t d = 4, n = 2000;
  Matrix x(d, n);
  const double scales[4] = {4.0, 2.0, 1.0, 0.5};
  for (std::size_t j = 0; j < d; ++j)
    for (std::size_t i = 0; i < n; ++i) x(j, i) = eng.normal(0.0, scales[j]);
  const Matrix r = sap::linalg::random_orthogonal(d, eng);

  auto rho_with_noise = [&](double sigma) {
    Matrix y = r * x;
    for (auto& v : y.data()) v += eng.normal(0.0, sigma);
    sap::privacy::SpectralAttack attack;
    sap::privacy::AttackContext ctx;
    ctx.perturbed = &y;
    const auto rec = attack.reconstruct(ctx, eng);
    const Vector p = sap::privacy::candidate_pool_privacy(x, rec.estimate);
    return *std::min_element(p.begin(), p.end());
  };
  EXPECT_GT(rho_with_noise(2.0), rho_with_noise(0.0));
}

TEST(SpectralAttack, IncludedInSuiteWhenEnabled) {
  Engine eng(34);
  const Matrix x = uniform_sources(3, 200, eng);
  const auto g = GeometricPerturbation::random(3, 0.1, eng);
  Engine noise(35);
  const Matrix y = g.apply(x, noise);
  sap::privacy::AttackSuite suite(
      {.naive = false, .ica = false, .spectral = true, .known_inputs = 0});
  const auto report = suite.evaluate(x, y, eng);
  ASSERT_EQ(report.attacks.size(), 1u);
  EXPECT_EQ(report.attacks.front().attack, "spectral");
  EXPECT_FALSE(report.attacks.front().failed);
}

TEST(KnownInputAttack, RequiresAtLeastTwoKnownRecords) {
  Engine eng(17);
  const Matrix x = uniform_sources(3, 50, eng);
  sap::privacy::KnownInputAttack attack;
  sap::privacy::AttackContext ctx;
  ctx.perturbed = &x;
  ctx.known_indices = {0};
  ctx.known_originals = Matrix(3, 1);
  EXPECT_THROW(attack.reconstruct(ctx, eng), sap::Error);
}

// ------------------------------------------------------------ evaluator

TEST(AttackSuite, RhoIsMinAcrossAttacks) {
  Engine eng(18);
  const Matrix x = uniform_sources(4, 600, eng);
  const auto g = GeometricPerturbation::random(4, 0.1, eng);
  Engine noise(19);
  const Matrix y = g.apply(x, noise);

  sap::privacy::AttackSuite suite(
      {.naive = true, .ica = true, .known_inputs = 4});
  const auto report = suite.evaluate(x, y, eng);
  ASSERT_EQ(report.attacks.size(), 3u);
  double min_rho = 1e300;
  for (const auto& a : report.attacks) {
    if (a.failed) continue;
    min_rho = std::min(min_rho, a.rho);
  }
  EXPECT_DOUBLE_EQ(report.rho, min_rho);
}

TEST(AttackSuite, NoAttacksEnabledThrows) {
  EXPECT_THROW(sap::privacy::AttackSuite({.naive = false, .ica = false, .known_inputs = 0}),
               sap::Error);
}

TEST(AttackSuite, KnownInputDominatesWhenNoiseFree) {
  // With sigma = 0 the known-input attack reconstructs everything, so the
  // suite's rho collapses regardless of how good the rotation is.
  Engine eng(20);
  const Matrix x = uniform_sources(5, 300, eng);
  const auto g = GeometricPerturbation::random(5, 0.0, eng);
  const Matrix y = g.apply_noiseless(x);
  sap::privacy::AttackSuite suite({.naive = true, .ica = false, .known_inputs = 6});
  const auto report = suite.evaluate(x, y, eng);
  EXPECT_LT(report.rho, 0.05);
}

TEST(AttackSuite, OptimizableGapExistsBetweenRotations) {
  // The premise of the optimizer: different rotations at the same noise
  // level give materially different rho. Verify spread across 12 draws.
  Engine eng(21);
  const sap::data::Dataset ds = sap::data::make_uci("Iris", 7);
  sap::data::MinMaxNormalizer norm;
  norm.fit(ds.features());
  const Matrix x = norm.transform(ds.features()).transpose();

  sap::privacy::AttackSuite suite({.naive = true, .ica = false, .known_inputs = 0});
  double lo = 1e300, hi = 0.0;
  for (int trial = 0; trial < 12; ++trial) {
    const auto g = GeometricPerturbation::random(4, 0.05, eng);
    Engine noise(100 + trial);
    const auto report = suite.evaluate(x, g.apply(x, noise), eng);
    lo = std::min(lo, report.rho);
    hi = std::max(hi, report.rho);
  }
  EXPECT_GT(hi - lo, 0.05);
}

TEST(AttackSuite, ScratchReuseBitIdenticalToPerCallEvaluate) {
  // The hoisted-scratch overload must be a pure speedup: same RNG draws,
  // same numbers — across repeated reuse of one scratch.
  Engine eng(77);
  const sap::data::Dataset ds = sap::data::make_uci("Wine", 3);
  sap::data::MinMaxNormalizer norm;
  norm.fit(ds.features());
  const Matrix x = norm.transform(ds.features()).transpose();
  sap::privacy::AttackSuite suite({.naive = true, .ica = false, .known_inputs = 4});

  Engine eng_a(5), eng_b(5);
  auto scratch = suite.make_scratch(x);
  for (int trial = 0; trial < 4; ++trial) {
    const auto g = GeometricPerturbation::random(x.rows(), 0.1, eng);
    Engine noise(200 + trial);
    const Matrix y = g.apply(x, noise);
    const auto plain = suite.evaluate(x, y, eng_a);
    const auto reused = suite.evaluate(x, y, eng_b, scratch);
    ASSERT_EQ(plain.attacks.size(), reused.attacks.size());
    EXPECT_EQ(plain.rho, reused.rho);  // bit-identical
    for (std::size_t a = 0; a < plain.attacks.size(); ++a) {
      EXPECT_EQ(plain.attacks[a].rho, reused.attacks[a].rho);
      EXPECT_EQ(plain.attacks[a].per_column, reused.attacks[a].per_column);
    }
  }
}

TEST(AttackSuite, FastCandidatePoolBitIdenticalToPearsonReference) {
  // The evaluator's GEMM-factored candidate-pool path vs the public
  // pearson-loop reference, exercised through the naive attack's outcome.
  Engine eng(78);
  const sap::data::Dataset ds = sap::data::make_uci("Diabetes", 4);
  sap::data::MinMaxNormalizer norm;
  norm.fit(ds.features());
  const Matrix x = norm.transform(ds.features()).transpose();
  const auto g = GeometricPerturbation::random(x.rows(), 0.15, eng);
  Engine noise(9);
  const Matrix y = g.apply(x, noise);

  sap::privacy::AttackSuite suite({.naive = true, .ica = false, .known_inputs = 0});
  const auto report = suite.evaluate(x, y, eng);
  ASSERT_EQ(report.attacks.size(), 1u);
  const auto reference = sap::privacy::candidate_pool_privacy(x, y);
  EXPECT_EQ(report.attacks[0].per_column, reference);  // bit-identical
}

TEST(AttackSuite, MismatchedScratchThrows) {
  Engine eng(79);
  const Matrix x = uniform_sources(4, 40, eng);
  const Matrix y = uniform_sources(4, 40, eng);
  sap::privacy::AttackSuite suite({.naive = true, .ica = false, .known_inputs = 0});
  const Matrix other = uniform_sources(5, 40, eng);
  auto scratch = suite.make_scratch(other);
  EXPECT_THROW((void)suite.evaluate(x, y, eng, scratch), sap::Error);
}

}  // namespace
