// Tests for the mining-serving stack: ThreadPool (common/thread_pool.hpp),
// the JobSpec registry (protocol/jobs.hpp), and the MiningEngine
// (protocol/mining_engine.hpp) — including the determinism invariant (a
// batch's reports are bit-identical to serial execution regardless of
// thread count) and an 8-thread hammer against one shared engine. Run under
// TSAN like the threaded transport.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "data/normalize.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "protocol/jobs.hpp"
#include "protocol/mining_engine.hpp"
#include "protocol/session.hpp"

namespace {

using sap::ThreadPool;
using sap::data::Dataset;
namespace proto = sap::proto;

Dataset normalized_pool(const std::string& name, std::uint64_t seed) {
  const Dataset raw = sap::data::make_uci(name, seed);
  sap::data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  return {raw.name(), norm.transform(raw.features()), raw.labels()};
}

std::unique_ptr<proto::MiningEngine> make_engine(std::size_t threads, bool cache = true) {
  auto engine = std::make_unique<proto::MiningEngine>(
      proto::MiningEngineOptions{.threads = threads,
                                 .cache_models = cache,
                                 .shards = 1,
                                 .layout = proto::ShardLayout::kHashMod,
                                 .owned = {}});
  engine->set_pool(normalized_pool("Iris", 42));
  return engine;
}

/// Mixed request load exercising structural + trainable jobs and parameter
/// variation (so the cache sees several distinct keys).
std::vector<proto::MiningRequest> mixed_requests(std::size_t count) {
  std::vector<proto::MiningRequest> reqs;
  reqs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    switch (i % 5) {
      case 0: reqs.push_back({"record-count", {}}); break;
      case 1: reqs.push_back({"class-histogram", {}}); break;
      case 2: reqs.push_back({"knn-train-accuracy", {{"k", double(1 + (i % 3) * 2)}}}); break;
      case 3: reqs.push_back({"nb-train-accuracy", {}}); break;
      default: reqs.push_back({"perceptron-train-accuracy", {{"epochs", 10.0}}}); break;
    }
  }
  return reqs;
}

// ------------------------------------------------------------ thread pool

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(997);
  pool.run_indexed(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(3);
  pool.run_indexed(3, [&](std::size_t i) { ran[i] = std::this_thread::get_id(); });
  for (const auto& id : ran) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, FirstExceptionPropagatesAfterBatchDrains) {
  for (const std::size_t threads : {std::size_t{0}, std::size_t{3}}) {
    ThreadPool pool(threads);
    std::atomic<int> completed{0};
    try {
      pool.run_indexed(64, [&](std::size_t i) {
        if (i == 7) SAP_FAIL("index 7 failed");
        completed.fetch_add(1);
      });
      FAIL() << "exception must propagate";
    } catch (const sap::Error& e) {
      EXPECT_NE(std::string(e.what()).find("index 7"), std::string::npos);
    }
    // Every non-throwing index still ran: a failure never abandons work.
    EXPECT_EQ(completed.load(), 63);
  }
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round)
    pool.run_indexed(10, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 500);
}

// ------------------------------------------------------------ job registry

TEST(JobRegistryTest, DuplicateRegisterReplaces) {
  auto registry = proto::JobRegistry::builtins();
  const auto before = registry.size();
  registry.register_job("record-count",
                        [](const Dataset&) { return std::vector<double>{-1.0}; });
  EXPECT_EQ(registry.size(), before);  // replaced, not added

  proto::MiningEngine engine({}, std::move(registry));
  engine.set_pool(normalized_pool("Iris", 1));
  EXPECT_EQ(engine.run({"record-count", {}}).values, std::vector<double>{-1.0});
}

TEST(JobRegistryTest, UnknownNameThrows) {
  const auto registry = proto::JobRegistry::builtins();
  EXPECT_THROW((void)registry.find("no-such-job"), sap::Error);
  auto engine_ptr = make_engine(0);
  auto& engine = *engine_ptr;
  EXPECT_THROW(engine.run({"no-such-job", {}}), sap::Error);
  EXPECT_THROW(engine.run_batch({{"record-count", {}}, {"no-such-job", {}}}), sap::Error);
}

TEST(JobRegistryTest, EmptyJobIsANoOpResult) {
  auto engine_ptr = make_engine(2);
  auto& engine = *engine_ptr;
  const auto single = engine.run({"", {}});
  EXPECT_TRUE(single.values.empty());
  const auto batch = engine.run_batch({{"", {}}, {"record-count", {}}, {"", {}}});
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_TRUE(batch[0].values.empty());
  EXPECT_EQ(batch[1].values, std::vector<double>{150.0});
  EXPECT_TRUE(batch[2].values.empty());
  // No-op requests never touch the pool or the cache.
  EXPECT_EQ(engine.cache_stats().fits, 0u);
}

TEST(JobRegistryTest, MalformedSpecsRejected) {
  proto::JobRegistry registry;
  proto::JobSpec nameless;
  nameless.run = [](const Dataset&, const proto::JobParams&) {
    return std::vector<double>{};
  };
  EXPECT_THROW(registry.register_job(nameless), sap::Error);

  proto::JobSpec pathless;
  pathless.name = "neither-path";
  EXPECT_THROW(registry.register_job(pathless), sap::Error);

  proto::JobSpec bad_default;
  bad_default.name = "bad-default";
  bad_default.params = {{"p", 5.0, 0.0, 1.0}};  // default outside [min, max]
  bad_default.run = [](const Dataset&, const proto::JobParams&) {
    return std::vector<double>{};
  };
  EXPECT_THROW(registry.register_job(bad_default), sap::Error);

  EXPECT_THROW(registry.register_job("null-closure", proto::MinerJob{}), sap::Error);
}

TEST(JobRegistryTest, ParamValidation) {
  auto engine_ptr = make_engine(0);
  auto& engine = *engine_ptr;
  // Unknown parameter name.
  EXPECT_THROW(engine.run({"knn-train-accuracy", {{"bogus", 1.0}}}), sap::Error);
  // Out-of-range value (k must be >= 1).
  EXPECT_THROW(engine.run({"knn-train-accuracy", {{"k", 0.0}}}), sap::Error);
  // Defaults and explicit-default resolve to the same canonical key.
  const auto& spec = engine.registry().find("knn-train-accuracy");
  EXPECT_EQ(proto::JobSpec::canonical_params(spec.resolve_params({})),
            proto::JobSpec::canonical_params(spec.resolve_params({{"k", 5.0}})));
}

// ------------------------------------------------------------ engine serving

TEST(MiningEngineTest, RequiresAPool) {
  proto::MiningEngine engine;
  EXPECT_FALSE(engine.has_pool());
  EXPECT_THROW((void)engine.pool(), sap::Error);
  EXPECT_THROW(engine.run({"record-count", {}}), sap::Error);
}

TEST(MiningEngineTest, BatchReportsBitIdenticalToSerialAtAnyThreadCount) {
  const auto requests = mixed_requests(60);
  auto serial = make_engine(0);
  const auto reference = serial->run_batch(requests);
  ASSERT_EQ(reference.size(), requests.size());

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    auto engine_ptr = make_engine(threads);
    const auto responses = engine_ptr->run_batch(requests);
    ASSERT_EQ(responses.size(), reference.size());
    for (std::size_t i = 0; i < responses.size(); ++i) {
      ASSERT_EQ(responses[i].values.size(), reference[i].values.size()) << "request " << i;
      for (std::size_t v = 0; v < responses[i].values.size(); ++v)
        EXPECT_EQ(responses[i].values[v], reference[i].values[v])  // bit-identical
            << "request " << i << " value " << v << " at " << threads << " threads";
    }
  }
}

TEST(MiningEngineTest, TrainableJobsFitOncePerKeyAndServeFromCache) {
  auto engine_ptr = make_engine(4);
  auto& engine = *engine_ptr;
  const proto::MiningRequest req{"knn-train-accuracy", {{"k", 3.0}}};
  const auto first = engine.run(req);
  EXPECT_FALSE(first.model_cached);
  const auto second = engine.run(req);
  EXPECT_TRUE(second.model_cached);
  EXPECT_EQ(second.values, first.values);
  auto stats = engine.cache_stats();
  EXPECT_EQ(stats.fits, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);

  // A different hyperparameter is a different model.
  (void)engine.run({"knn-train-accuracy", {{"k", 7.0}}});
  stats = engine.cache_stats();
  EXPECT_EQ(stats.fits, 2u);
  EXPECT_EQ(stats.entries, 2u);

  // Structural jobs never touch the cache.
  (void)engine.run({"record-count", {}});
  EXPECT_EQ(engine.cache_stats().fits, 2u);
}

TEST(MiningEngineTest, SetPoolBumpsEpochAndInvalidatesModels) {
  auto engine_ptr = make_engine(2);
  auto& engine = *engine_ptr;
  EXPECT_EQ(engine.pool_epoch(), 1u);
  const auto iris = engine.run({"knn-train-accuracy", {}});
  EXPECT_EQ(engine.cache_stats().fits, 1u);

  engine.set_pool(normalized_pool("Wine", 7));
  EXPECT_EQ(engine.pool_epoch(), 2u);
  EXPECT_EQ(engine.cache_stats().entries, 0u);  // stale models dropped
  const auto wine = engine.run({"knn-train-accuracy", {}});
  EXPECT_FALSE(wine.model_cached);              // refit on the new pool
  EXPECT_EQ(engine.cache_stats().fits, 2u);
  EXPECT_NE(wine.values, iris.values);  // genuinely a different pool's model
}

TEST(MiningEngineTest, CacheDisabledRetrainsEveryRequest) {
  auto engine_ptr = make_engine(4, /*cache=*/false);
  auto& engine = *engine_ptr;
  std::vector<proto::MiningRequest> reqs(6, {"nb-train-accuracy", {}});
  const auto responses = engine.run_batch(reqs);
  for (const auto& r : responses) EXPECT_FALSE(r.model_cached);
  const auto stats = engine.cache_stats();
  EXPECT_EQ(stats.fits, 6u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(MiningEngineTest, EvalRecordsBoundsTheServingCost) {
  auto engine_ptr = make_engine(0);
  auto& engine = *engine_ptr;
  const auto full = engine.run({"knn-train-accuracy", {}});
  const auto bounded = engine.run({"knn-train-accuracy", {{"eval-records", 32.0}}});
  // eval-records is serve-only: it bounds the report, not the model, so the
  // second request reuses the first request's fitted model.
  EXPECT_TRUE(bounded.model_cached);
  EXPECT_EQ(engine.cache_stats().fits, 1u);
  ASSERT_EQ(full.values.size(), 1u);
  ASSERT_EQ(bounded.values.size(), 1u);
  EXPECT_GE(bounded.values[0], 0.0);
  EXPECT_LE(bounded.values[0], 1.0);
}

TEST(MiningEngineTest, HammeredFromEightThreadsMatchesSerialReference) {
  // The concurrency test the engine's thread-safety contract promises:
  // 8 caller threads hammer ONE engine with overlapping keys; every
  // response must equal the serial reference bit for bit, and the cache
  // must have fit each distinct key at most once.
  const std::size_t kThreads = 8, kPerThread = 30;
  const auto requests = mixed_requests(kPerThread);
  auto serial = make_engine(0);
  const auto reference = serial->run_batch(requests);

  auto shared_ptr = make_engine(0);  // callers bring their own threads
  auto& shared = *shared_ptr;
  std::vector<std::vector<proto::MiningResponse>> got(kThreads);
  std::vector<std::thread> callers;
  callers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t)
    callers.emplace_back([&, t] {
      got[t].reserve(requests.size());
      for (const auto& req : requests) got[t].push_back(shared.run(req));
    });
  for (auto& c : callers) c.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    ASSERT_EQ(got[t].size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i)
      EXPECT_EQ(got[t][i].values, reference[i].values) << "thread " << t << " request " << i;
  }
  const auto stats = shared.cache_stats();
  // mixed_requests(30) contains 5 distinct trainable keys (knn k∈{1,3,5},
  // nb, perceptron): exactly one fit each despite 8x30 requests.
  EXPECT_EQ(stats.fits, serial->cache_stats().fits);
  EXPECT_EQ(stats.hits + stats.fits, kThreads * /*trainable requests*/ 18u);
}

// ------------------------------------------------------------ live pool (append)

TEST(LivePoolTest, AppendRecordsBumpsEpochAndKeepsCachedWork) {
  auto engine_ptr = make_engine(0);
  auto& engine = *engine_ptr;
  const Dataset pool = normalized_pool("Iris", 42);
  EXPECT_EQ(engine.pool_epoch(), 1u);

  const auto before = engine.run({"nb-train-accuracy", {}});
  EXPECT_FALSE(before.model_cached);
  EXPECT_EQ(before.pool_epoch, 1u);
  EXPECT_EQ(engine.cache_stats().fits, 1u);

  const auto epoch = engine.append_records(pool.slice(0, 20));
  EXPECT_EQ(epoch, 2u);
  EXPECT_EQ(engine.pool_epoch(), 2u);
  EXPECT_EQ(engine.pool_view().data->size(), 170u);
  // The cached entry survives the append (unlike set_pool) and seeds an
  // incremental refit.
  EXPECT_EQ(engine.cache_stats().entries, 1u);

  const auto after = engine.run({"nb-train-accuracy", {}});
  EXPECT_EQ(after.pool_epoch, 2u);
  EXPECT_TRUE(after.model_incremental);
  EXPECT_FALSE(after.model_cached);
  const auto stats = engine.cache_stats();
  EXPECT_EQ(stats.fits, 1u);         // never retrained from scratch
  EXPECT_EQ(stats.incremental, 1u);  // extended instead

  const auto again = engine.run({"nb-train-accuracy", {}});
  EXPECT_TRUE(again.model_cached);  // the refit model now serves epoch 2
  EXPECT_EQ(again.values, after.values);
}

TEST(LivePoolTest, IncrementalRefitMatchesFullRetrainReports) {
  // Incremental-refit contract through the engine: for NaiveBayes and Knn
  // the post-append report must equal the full-retrain report bit for bit.
  const Dataset pool = normalized_pool("Wine", 9);
  const Dataset base = pool.slice(0, 120);
  const Dataset batch = pool.slice(120, pool.size());
  for (const auto* job : {"nb-train-accuracy", "knn-train-accuracy"}) {
    proto::MiningEngine incremental{proto::MiningEngineOptions{}};
    incremental.set_pool(base);
    (void)incremental.run({job, {}});  // warm: full fit on the base pool
    incremental.append_records(batch);
    const auto fast = incremental.run({job, {}});
    EXPECT_TRUE(fast.model_incremental) << job;

    proto::MiningEngine fresh{proto::MiningEngineOptions{}};
    fresh.set_pool(base);
    fresh.append_records(batch);
    const auto slow = fresh.run({job, {}});
    EXPECT_FALSE(slow.model_incremental) << job;
    EXPECT_EQ(fast.values, slow.values) << job;
  }
}

TEST(LivePoolTest, ModelsWithoutPartialFitFallBackToFullRefit) {
  auto engine_ptr = make_engine(0);
  auto& engine = *engine_ptr;
  (void)engine.run({"svm-train-accuracy", {}});
  engine.append_records(normalized_pool("Iris", 42).slice(0, 10));
  const auto response = engine.run({"svm-train-accuracy", {}});
  EXPECT_FALSE(response.model_incremental);
  EXPECT_FALSE(response.model_cached);
  const auto stats = engine.cache_stats();
  EXPECT_EQ(stats.fits, 2u);  // full refit on the grown pool
  EXPECT_EQ(stats.incremental, 0u);
}

TEST(LivePoolTest, SetPoolSeversIncrementalLineage) {
  auto engine_ptr = make_engine(0);
  auto& engine = *engine_ptr;
  (void)engine.run({"nb-train-accuracy", {}});
  engine.set_pool(normalized_pool("Wine", 7));
  const auto response = engine.run({"nb-train-accuracy", {}});
  EXPECT_FALSE(response.model_incremental);  // replaced pool: full fit
  EXPECT_EQ(engine.cache_stats().fits, 2u);
}

TEST(LivePoolTest, AppendValidations) {
  proto::MiningEngine engine;
  const Dataset pool = normalized_pool("Iris", 42);
  EXPECT_THROW(engine.append_records(pool.slice(0, 10)), sap::Error);  // no pool yet
  engine.set_pool(pool);
  EXPECT_THROW(engine.append_records(pool.slice(0, 0)), sap::Error);  // empty batch
  EXPECT_THROW(engine.append_records(normalized_pool("Wine", 7).slice(0, 5)),
               sap::Error);  // 13 dims vs 4
  EXPECT_EQ(engine.pool_epoch(), 1u);  // nothing mutated
}

TEST(LivePoolTest, SnapshotsOutliveAppends) {
  auto engine_ptr = make_engine(0);
  auto& engine = *engine_ptr;
  const auto old_view = engine.pool_view();
  EXPECT_EQ(old_view.data->size(), 150u);
  engine.append_records(normalized_pool("Iris", 42).slice(0, 30));
  // The pre-append snapshot still answers with the old pool (bounded
  // staleness: a request that grabbed it finishes against epoch 1).
  EXPECT_EQ(old_view.data->size(), 150u);
  EXPECT_EQ(old_view.epoch, 1u);
  EXPECT_EQ(engine.pool_view().data->size(), 180u);
}

TEST(LivePoolTest, BatchReportsBitIdenticalAcrossThreadCountsWithInterleavedAppends) {
  const Dataset pool = normalized_pool("Iris", 42);
  const auto requests = mixed_requests(40);
  const auto scenario = [&](std::size_t threads) {
    proto::MiningEngine engine({.threads = threads,
                                .cache_models = true,
                                .shards = 1,
                                .layout = proto::ShardLayout::kHashMod,
                                .owned = {}});
    engine.set_pool(pool.slice(0, 100));
    std::vector<proto::MiningResponse> all;
    for (const std::size_t step : {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
      if (step > 0) engine.append_records(pool.slice(75 + 25 * step, 100 + 25 * step));
      auto part = engine.run_batch(requests);
      all.insert(all.end(), part.begin(), part.end());
    }
    return all;
  };
  const auto reference = scenario(0);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const auto got = scenario(threads);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].values, reference[i].values) << "response " << i;
      EXPECT_EQ(got[i].pool_epoch, reference[i].pool_epoch) << "response " << i;
    }
  }
}

TEST(LivePoolTest, ServingStaysAvailableDuringConcurrentIngest) {
  // The TSAN-relevant hammer: one ingest thread keeps appending while four
  // caller threads serve. Every response must be well-formed and land on a
  // real epoch; afterwards the quiesced engine must agree with a fresh
  // engine fitted on the final pool (NB's incremental chain is bit-exact).
  const Dataset pool = normalized_pool("Iris", 42);
  auto engine_ptr = std::make_unique<proto::MiningEngine>(proto::MiningEngineOptions{});
  auto& engine = *engine_ptr;
  engine.set_pool(pool.slice(0, 60));

  std::thread ingester([&] {
    for (std::size_t b = 0; b < 9; ++b)
      engine.append_records(pool.slice(60 + 10 * b, 70 + 10 * b));
  });
  std::vector<std::thread> servers;
  std::atomic<std::size_t> served{0};
  for (int t = 0; t < 4; ++t)
    servers.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        const auto r = engine.run({"nb-train-accuracy", {}});
        ASSERT_EQ(r.values.size(), 1u);
        ASSERT_GE(r.pool_epoch, 1u);
        ASSERT_LE(r.pool_epoch, 10u);
        served.fetch_add(1);
      }
    });
  ingester.join();
  for (auto& s : servers) s.join();
  EXPECT_EQ(served.load(), 100u);

  const auto settled = engine.run({"nb-train-accuracy", {}});
  EXPECT_EQ(settled.pool_epoch, 10u);
  proto::MiningEngine fresh{proto::MiningEngineOptions{}};
  fresh.set_pool(pool);
  EXPECT_EQ(settled.values, fresh.run({"nb-train-accuracy", {}}).values);
}

// ------------------------------------------------------------ session wiring

proto::SapOptions fast_session_opts(std::uint64_t seed) {
  auto opts = proto::SapOptions::fast();
  opts.seed = seed;
  opts.compute_satisfaction = false;
  return opts;
}

std::vector<Dataset> iris_shards(std::size_t k, std::uint64_t seed) {
  const Dataset pool = normalized_pool("Iris", seed);
  sap::rng::Engine eng(seed ^ 0xBEEF);
  sap::data::PartitionOptions popts;
  return sap::data::partition(pool, k, popts, eng);
}

TEST(SessionEngineTest, EngineAccessorCompletesThePhasesAndServesBatches) {
  auto opts = fast_session_opts(21);
  opts.mining_threads = 4;
  proto::SapSession session(iris_shards(4, 21), opts);
  EXPECT_EQ(session.phase(), proto::SessionPhase::kLocalOptimize);

  auto& engine = session.engine();  // implicit run_until(kMine)
  EXPECT_EQ(session.phase(), proto::SessionPhase::kMine);
  EXPECT_EQ(engine.pool().size(), 150u);
  EXPECT_EQ(engine.threads(), 4u);

  const std::size_t before = session.transport().trace().size();
  const auto responses = engine.run_batch(mixed_requests(20));
  EXPECT_EQ(responses.size(), 20u);
  // Direct engine access broadcasts nothing (mine()/mine_named() do).
  EXPECT_EQ(session.transport().trace().size(), before);
}

TEST(SessionEngineTest, MineNamedAcceptsParamsAndBroadcasts) {
  proto::SapSession session(iris_shards(4, 22), fast_session_opts(22));
  const auto result = session.mine_named("knn-train-accuracy", {{"k", 1.0}});
  // 1-NN training accuracy on the training pool itself is always 1.
  std::size_t reports = 0;
  for (proto::PartyId p = 0; p < 4; ++p)
    reports += session.transport().count_received(p, proto::PayloadKind::kModelReport);
  EXPECT_EQ(reports, 4u);
  (void)result;
}

TEST(SessionEngineTest, RepeatedMineNamedServesFromTheModelCache) {
  proto::SapSession session(iris_shards(4, 23), fast_session_opts(23));
  (void)session.mine_named("nb-train-accuracy");
  (void)session.mine_named("nb-train-accuracy");
  (void)session.mine_named("nb-train-accuracy");
  const auto stats = session.engine().cache_stats();
  EXPECT_EQ(stats.fits, 1u);
  EXPECT_EQ(stats.hits, 2u);
}

TEST(SessionEngineTest, SessionDeterminismHoldsAcrossMiningThreadCounts) {
  // The session-level determinism invariant: mining_threads must not leak
  // into any reported value (same exchange, same pool, same reports).
  auto opts_serial = fast_session_opts(24);
  auto opts_threaded = fast_session_opts(24);
  opts_threaded.mining_threads = 8;
  proto::SapSession a(iris_shards(5, 24), opts_serial);
  proto::SapSession b(iris_shards(5, 24), opts_threaded);

  const auto batch = mixed_requests(25);
  const auto ra = a.engine().run_batch(batch);
  const auto rb = b.engine().run_batch(batch);
  EXPECT_TRUE(a.engine().pool().features().approx_equal(b.engine().pool().features(), 0.0));
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) EXPECT_EQ(ra[i].values, rb[i].values);
}

}  // namespace
