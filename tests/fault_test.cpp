// Fault-injection and self-healing tests (net/fault.hpp + the retry,
// breaker, and resync machinery of DESIGN.md §13):
//
//   * plan layer: FaultPlan specs parse, round-trip through to_string,
//     split `rate` evenly, and reject malformed input loudly;
//   * schedule layer: decision_word is a pure function of (seed, index) —
//     the same seed replays the IDENTICAL fault schedule (kinds, trace,
//     stats), and a different seed diverges;
//   * chaos layer: with faults injected at the socket boundary, every
//     retried response is BIT-IDENTICAL to the fault-free reference — a
//     fault never silently corrupts a report, it either heals or fails
//     typed;
//   * retry taxonomy: typed refusals are never retried, idempotent ops are
//     budget- AND deadline-bounded, contributions never retry at the
//     transport level;
//   * circuit breaker: consecutive transport failures trip it, an open
//     breaker fails fast, a cooled-down breaker probes half-open through
//     the stats door and re-opens (probe fails) or closes (probe lands);
//   * negative-connect cache: a dead miner's connect cost is paid once per
//     window, failovers inside it skip without dialing;
//   * rejoin: a freshly-started miner resyncs its owned shards from a live
//     peer through the shard-snapshot door and serves bit-identical to the
//     donor at the donor's epoch.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "data/normalize.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "net/cluster.hpp"
#include "net/fault.hpp"
#include "net/remote.hpp"
#include "net/socket.hpp"
#include "protocol/mining_engine.hpp"
#include "protocol/party_logic.hpp"

namespace {

using sap::data::Dataset;
using sap::rng::Engine;
namespace net = sap::net;
namespace proto = sap::proto;
namespace fault = sap::net::fault;

/// Uninstalls on scope exit so a failing assertion can't leak an active
/// fault plan into the rest of the suite (or into gtest's own plumbing).
struct FaultGuard {
  FaultGuard() = default;
  FaultGuard(const FaultGuard&) = delete;
  FaultGuard& operator=(const FaultGuard&) = delete;
  ~FaultGuard() { fault::uninstall(); }
};

// ---- plan layer ----------------------------------------------------------

TEST(FaultPlan, ParsesEveryFieldAndRoundTripsThroughToString) {
  const auto plan = fault::FaultPlan::parse(
      "seed=77,drop=0.02,delay=0.1,partial=0.05,truncate=0.04,corrupt=0.03,"
      "reset=0.01,accept=0.06,delay_ms=7");
  EXPECT_EQ(plan.seed, 77u);
  EXPECT_DOUBLE_EQ(plan.drop, 0.02);
  EXPECT_DOUBLE_EQ(plan.delay, 0.1);
  EXPECT_DOUBLE_EQ(plan.partial, 0.05);
  EXPECT_DOUBLE_EQ(plan.truncate, 0.04);
  EXPECT_DOUBLE_EQ(plan.corrupt, 0.03);
  EXPECT_DOUBLE_EQ(plan.reset, 0.01);
  EXPECT_DOUBLE_EQ(plan.refuse_accept, 0.06);
  EXPECT_EQ(plan.delay_ms, 7);
  // to_string re-parses to the same plan (the operator's round trip).
  const auto again = fault::FaultPlan::parse(plan.to_string());
  EXPECT_EQ(again.to_string(), plan.to_string());
  EXPECT_EQ(again.seed, plan.seed);
  EXPECT_DOUBLE_EQ(again.refuse_accept, plan.refuse_accept);
  EXPECT_EQ(again.delay_ms, plan.delay_ms);
}

TEST(FaultPlan, RateSplitsEvenlyAcrossDropCorruptReset) {
  const auto plan = fault::FaultPlan::parse("seed=9,rate=0.06");
  EXPECT_DOUBLE_EQ(plan.drop, 0.02);
  EXPECT_DOUBLE_EQ(plan.corrupt, 0.02);
  EXPECT_DOUBLE_EQ(plan.reset, 0.02);
  EXPECT_DOUBLE_EQ(plan.delay, 0.0);
}

TEST(FaultPlan, RejectsMalformedSpecsLoudly) {
  EXPECT_THROW((void)fault::FaultPlan::parse("drop"), sap::Error);
  EXPECT_THROW((void)fault::FaultPlan::parse("drop="), sap::Error);
  EXPECT_THROW((void)fault::FaultPlan::parse("drop=1.5"), sap::Error);
  EXPECT_THROW((void)fault::FaultPlan::parse("drop=-0.1"), sap::Error);
  EXPECT_THROW((void)fault::FaultPlan::parse("drop=abc"), sap::Error);
  EXPECT_THROW((void)fault::FaultPlan::parse("seed=1x"), sap::Error);
  EXPECT_THROW((void)fault::FaultPlan::parse("delay_ms=0"), sap::Error);
  EXPECT_THROW((void)fault::FaultPlan::parse("chaos=1"), sap::Error);
}

// ---- schedule layer ------------------------------------------------------

TEST(FaultSchedule, DecisionWordIsAPureFunctionOfSeedAndIndex) {
  const std::uint64_t w = fault::decision_word(7, 0);
  EXPECT_EQ(fault::decision_word(7, 0), w);
  EXPECT_NE(fault::decision_word(8, 0), w);
  EXPECT_NE(fault::decision_word(7, 1), w);
  // Installing a plan (which owns the process-global decision counter)
  // must not perturb the pure function.
  FaultGuard guard;
  fault::install(fault::FaultPlan::parse("seed=123,rate=0.5"));
  (void)fault::next_write_fault(64);
  EXPECT_EQ(fault::decision_word(7, 0), w);
}

TEST(FaultSchedule, SameSeedReplaysTheIdenticalSchedule) {
  FaultGuard guard;
  const auto draw_schedule = [](const fault::FaultPlan& plan) {
    fault::install(plan);
    std::vector<fault::Kind> kinds;
    for (int i = 0; i < 256; ++i) kinds.push_back(fault::next_write_fault(64).kind);
    for (int i = 0; i < 128; ++i) kinds.push_back(fault::next_read_fault(64).kind);
    for (int i = 0; i < 64; ++i)
      kinds.push_back(fault::next_connect_fault() ? fault::Kind::kReset
                                                  : fault::Kind::kNone);
    for (int i = 0; i < 64; ++i)
      kinds.push_back(fault::next_accept_fault() ? fault::Kind::kRefuseAccept
                                                 : fault::Kind::kNone);
    auto trace = fault::trace();
    auto stats = fault::stats();
    fault::uninstall();
    return std::tuple(std::move(kinds), std::move(trace), stats);
  };

  const auto plan = fault::FaultPlan::parse(
      "seed=4242,drop=0.1,delay=0.1,partial=0.1,truncate=0.1,corrupt=0.1,"
      "reset=0.1,accept=0.4,delay_ms=1");
  const auto [kinds_a, trace_a, stats_a] = draw_schedule(plan);
  const auto [kinds_b, trace_b, stats_b] = draw_schedule(plan);
  EXPECT_EQ(kinds_a, kinds_b);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(stats_a.decisions, 512u);
  EXPECT_EQ(stats_b.decisions, 512u);
  EXPECT_EQ(stats_a.injected, stats_b.injected);
  EXPECT_GT(stats_a.total_injected(), 0u);
  EXPECT_EQ(trace_a.size(), stats_a.total_injected());

  // A different seed is a different schedule.
  auto reseeded = plan;
  reseeded.seed = 4243;
  const auto [kinds_c, trace_c, stats_c] = draw_schedule(reseeded);
  EXPECT_NE(kinds_a, kinds_c);
}

// ---- live-cluster harness (cluster_test idiom) ---------------------------

Dataset normalized_pool(const std::string& name, std::uint64_t seed) {
  const Dataset raw = sap::data::make_uci(name, seed);
  sap::data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  return {raw.name(), norm.transform(raw.features()), raw.labels()};
}

/// The chaos jobs: one counter, one exact-merge histogram, one model
/// trainer — enough job diversity to cover the partial/merge, gather, and
/// route serving paths without making the faulted rounds slow.
const char* const kChaosJobs[] = {"record-count", "class-histogram",
                                  "nb-train-accuracy"};

proto::JobParams job_params(const std::string& job) {
  proto::JobParams params;
  if (job.find("train-accuracy") != std::string::npos) params["eval-records"] = 48.0;
  return params;
}

/// One in-process cluster member: a MinerDaemon plus its k exchange
/// parties. Party 0 holds the daemon open until release() (cluster_test
/// idiom) — stopping it ends the run loop and the reactor.
struct Member {
  std::unique_ptr<net::MinerDaemon> daemon;
  std::future<net::MinerDaemon::Summary> done;
  std::vector<std::thread> parties;
  std::promise<void> release;
  bool stopped = false;

  Member() = default;
  Member(const Member&) = delete;
  Member& operator=(const Member&) = delete;
  /// Unwind-safe: a throwing assertion mid-test must not destroy joinable
  /// party threads (std::terminate) — it should surface the assertion.
  ~Member() {
    if (daemon == nullptr || stopped) return;
    try {
      (void)stop();
    } catch (...) {
    }
  }

  void start(const std::vector<Dataset>& shards, const proto::SapOptions& sap_opts,
             std::uint64_t seed, net::MinerDaemonOptions opts) {
    const std::size_t k = shards.size();
    opts.parties = k;
    opts.seed = seed;
    opts.reactor_loops = 2;
    opts.reactor_compute_threads = 2;
    daemon = std::make_unique<net::MinerDaemon>(opts);
    done = std::async(std::launch::async, [this] { return daemon->run(); });
    std::promise<void> exchanged;
    std::shared_future<void> released(release.get_future());
    for (std::size_t i = 0; i < k; ++i) {
      parties.emplace_back([this, &shards, &sap_opts, seed, k, i, released,
                            &exchanged] {
        net::PartyClientOptions popts;
        popts.connect = daemon->local_addr();
        popts.index = i;
        popts.parties = k;
        popts.sap = sap_opts;
        net::PartyClient party(shards[i], popts);
        (void)party.run_exchange();
        if (i == 0) {
          exchanged.set_value();
          released.wait();
        }
        party.finish();
      });
    }
    exchanged.get_future().wait();
    // Party 0 finishing its exchange does not mean the DAEMON has installed
    // the pool yet — wait for the serving flip so fault-free phases and
    // retry-count assertions never race a transient "not serving" refusal.
    for (int i = 0; i < 2000 && !daemon->serving(); ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    SAP_REQUIRE(daemon->serving(), "test member: daemon never started serving");
  }

  net::MinerDaemon::Summary stop() {
    stopped = true;
    release.set_value();
    for (auto& t : parties) t.join();
    return done.get();
  }
};

struct Cluster {
  Dataset pool;
  std::vector<Dataset> shards;
  proto::SapOptions sap_opts;
  std::uint64_t seed;
  std::size_t k;

  explicit Cluster(std::uint64_t seed_in, std::size_t k_in = 3) : seed(seed_in), k(k_in) {
    pool = normalized_pool("Iris", seed);
    Engine shard_eng(seed ^ 0xBEEF);
    sap::data::PartitionOptions popts;
    shards = sap::data::partition(pool.slice(0, 100), k, popts, shard_eng);
    sap_opts = proto::SapOptions::fast();
    sap_opts.seed = seed;
    sap_opts.compute_satisfaction = false;
  }

  /// Party 0's contribution wires, batches drawn from the held-back tail.
  std::vector<std::vector<double>> wires(std::size_t count) const {
    const auto seeds = proto::logic::derive_session_seeds(seed, k);
    Engine eng = seeds.provider_eng[0];
    const auto local = proto::logic::optimize_local(shards[0].features_T(),
                                                    shards[0].dims(), sap_opts, eng);
    std::vector<std::vector<double>> out;
    for (std::size_t b = 0; b < count; ++b) {
      const Dataset batch = pool.slice(100 + b * 10, 110 + b * 10);
      const auto y = local.g.apply(batch.features_T(), eng);
      out.push_back(proto::encode_contribution(local.nonce, y, batch.labels()));
    }
    return out;
  }
};

// ---- chaos layer ---------------------------------------------------------

TEST(FaultChaos, RetriedResponsesAreBitIdenticalToTheFaultFreeReference) {
  Cluster cluster(9101);
  Member a;
  net::MinerDaemonOptions opts;
  opts.shards = 1;
  a.start(cluster.shards, cluster.sap_opts, cluster.seed, opts);

  // Fault-free reference responses, one per chaos job.
  std::map<std::string, std::vector<double>> want;
  {
    net::ServeClient c(a.daemon->reactor_addr(), cluster.seed, cluster.k);
    for (const char* job : kChaosJobs) want[job] = c.mine_named(job, job_params(job)).values;
    c.bye();
  }

  FaultGuard guard;
  fault::install(fault::FaultPlan::parse(
      "seed=42,drop=0.02,delay=0.08,partial=0.04,truncate=0.01,corrupt=0.015,"
      "reset=0.015,delay_ms=2"));

  net::ServeClient::Options copts;
  copts.timeout_ms = 400;  // a dropped frame costs one short timeout, not 10 s
  copts.retry_attempts = 12;
  copts.retry_backoff_ms = 1;
  copts.retry_backoff_cap_ms = 8;
  copts.retry_deadline_ms = 60'000;

  // The dial itself can draw an injected connect reset — budget-bounded.
  std::unique_ptr<net::ServeClient> client;
  for (int attempt = 0; attempt < 32 && !client; ++attempt) {
    try {
      client = std::make_unique<net::ServeClient>(a.daemon->reactor_addr(),
                                                  cluster.seed, cluster.k, copts);
    } catch (const sap::Error&) {
    }
  }
  ASSERT_TRUE(client) << "could not dial through the fault plan";

  // Under ~10% injected faults the robustness contract is: every response
  // is BIT-IDENTICAL to the fault-free reference or a TYPED error (a retry
  // budget can legitimately exhaust) — never a silently different report.
  std::size_t served = 0;
  std::size_t typed = 0;
  for (int round = 0; round < 3; ++round) {
    for (const char* job : kChaosJobs) {
      try {
        const auto got = client->mine_named(job, job_params(job));
        EXPECT_EQ(got.values, want[job])
            << job << " diverged under faults in round " << round;
        ++served;
      } catch (const sap::Error&) {
        ++typed;  // budget exhausted: typed, never wrong
      }
    }
  }
  EXPECT_GE(served, 7u) << "availability collapsed: " << typed << " typed failures";
  EXPECT_GT(fault::stats().decisions, 0u);
  EXPECT_GT(fault::stats().total_injected(), 0u);

  // The stats door discloses the chaos: this process says it injects.
  bool disclosed = false;
  for (int attempt = 0; attempt < 5 && !disclosed; ++attempt) {
    try {
      const auto decoded = client->stats();
      for (const auto& [name, value] : decoded.snapshot.counters)
        if (name == "fault.decisions" && value > 0) disclosed = true;
      break;
    } catch (const sap::Error&) {
    }
  }
  EXPECT_TRUE(disclosed) << "stats door must surface fault.decisions under chaos";

  fault::uninstall();
  try {
    client->bye();
  } catch (const sap::Error&) {
    // The last injected fault may have torn the socket; goodbye is polite,
    // not load-bearing.
  }
  a.stop();
}

TEST(FaultRetry, TypedRefusalsBudgetsAndDeadlinesBoundEveryRetry) {
  Cluster cluster(9102);
  Member a;
  net::MinerDaemonOptions opts;
  opts.shards = 1;
  a.start(cluster.shards, cluster.sap_opts, cluster.seed, opts);

  // A typed refusal is definitive: the daemon ANSWERED. No retry burned.
  // (Generous timeout: this check is about taxonomy, not latency.)
  {
    net::ServeClient::Options gopts;
    gopts.retry_attempts = 2;
    net::ServeClient refusal(a.daemon->reactor_addr(), cluster.seed, cluster.k, gopts);
    try {
      (void)refusal.mine_named("no-such-job");
      ADD_FAILURE() << "expected net::ServeError for an unknown job";
    } catch (const net::ServeError& e) {
      EXPECT_EQ(e.code(), proto::ServeErrorCode::kBadRequest);
    }
    EXPECT_EQ(refusal.retries(), 0u);
    refusal.bye();
  }

  // The budget client dials (and handshakes) BEFORE the black hole opens;
  // its short timeout keeps each doomed attempt cheap.
  net::ServeClient::Options copts;
  copts.timeout_ms = 150;
  copts.retry_attempts = 2;
  copts.retry_backoff_ms = 1;
  copts.retry_backoff_cap_ms = 2;
  copts.retry_deadline_ms = 10'000;
  net::ServeClient client(a.daemon->reactor_addr(), cluster.seed, cluster.k, copts);

  FaultGuard guard;
  fault::install(fault::FaultPlan::parse("seed=1,drop=1"));

  // Idempotent op against a black hole: the budget is spent, then a typed
  // transport error — retries() counts exactly the budget.
  try {
    (void)client.mine_named("record-count");
    ADD_FAILURE() << "expected sap::Error after the retry budget";
  } catch (const sap::Error&) {
  }
  EXPECT_EQ(client.retries(), 2u);

  // Contributions are NOT idempotent: one attempt, zero transport retries.
  const auto wires = cluster.wires(1);
  try {
    (void)client.contribute_wire(wires[0]);
    ADD_FAILURE() << "expected sap::Error for a dropped contribution";
  } catch (const sap::Error&) {
  }
  EXPECT_EQ(client.retries(), 2u) << "a contribution must never retry at transport level";
  fault::uninstall();

  // Deadline-scoped: a 1 ms deadline refuses the first backoff sleep.
  net::ServeClient::Options dopts = copts;
  dopts.retry_attempts = 100;
  dopts.retry_deadline_ms = 1;
  net::ServeClient deadline_client(a.daemon->reactor_addr(), cluster.seed,
                                   cluster.k, dopts);
  fault::install(fault::FaultPlan::parse("seed=2,drop=1"));
  try {
    (void)deadline_client.mine_named("record-count");
    ADD_FAILURE() << "expected sap::Error once the deadline lapsed";
  } catch (const sap::Error&) {
  }
  EXPECT_EQ(deadline_client.retries(), 0u)
      << "no retry may start past the caller's deadline";
  fault::uninstall();
  a.stop();
}

// ---- circuit breaker -----------------------------------------------------

TEST(CircuitBreaker, TripsFailsFastProbesHalfOpenAndCloses) {
  Cluster cluster(9103);
  Member a;
  net::MinerDaemonOptions opts;
  opts.shards = 1;
  a.start(cluster.shards, cluster.sap_opts, cluster.seed, opts);

  net::ShardRouterOptions ropts;
  ropts.miners = {a.daemon->reactor_addr()};
  ropts.shards = 1;
  ropts.replicas = 1;
  ropts.seed = cluster.seed;
  ropts.parties = cluster.k;
  ropts.breaker_threshold = 3;
  ropts.breaker_cooldown_ms = 150;
  net::ShardRouter router(ropts);

  const auto want = router.mine_named("record-count");
  EXPECT_EQ(router.breaker(0), net::ShardRouter::BreakerState::kClosed);

  FaultGuard guard;
  fault::install(fault::FaultPlan::parse("seed=5,reset=1"));

  // Three consecutive transport failures trip the breaker.
  for (int i = 0; i < 3; ++i) {
    try {
      (void)router.mine_named("record-count");
      ADD_FAILURE() << "expected ServeError{kUnavailable} under reset=1";
    } catch (const net::ServeError& e) {
      EXPECT_EQ(e.code(), proto::ServeErrorCode::kUnavailable);
    }
  }
  EXPECT_EQ(router.breaker(0), net::ShardRouter::BreakerState::kOpen);

  // Open = fail fast: the cooldown window refuses without dialing.
  try {
    (void)router.mine_named("record-count");
    ADD_FAILURE() << "expected a fast refusal while the breaker is open";
  } catch (const net::ServeError& e) {
    EXPECT_NE(std::string(e.what()).find("breaker open"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(router.breaker(0), net::ShardRouter::BreakerState::kOpen);

  // Cooled down + faults still on: the half-open probe fails, re-opens.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  try {
    (void)router.mine_named("record-count");
    ADD_FAILURE() << "expected the half-open probe to fail under reset=1";
  } catch (const net::ServeError& e) {
    EXPECT_NE(std::string(e.what()).find("breaker probe failed"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(router.breaker(0), net::ShardRouter::BreakerState::kOpen);

  // Faults lifted: the next cooled-down probe lands through the stats door,
  // the breaker closes, and serving resumes bit-identical.
  fault::uninstall();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const auto healed = router.mine_named("record-count");
  EXPECT_EQ(healed.values, want.values);
  EXPECT_EQ(router.breaker(0), net::ShardRouter::BreakerState::kClosed);
  a.stop();
}

TEST(NegativeConnectCache, SkipsRedialingADeadMinerWithinTheWindow) {
  // A loopback port with nothing behind it: bind, record, release.
  net::SocketAddr dead;
  {
    auto parked = net::TcpListener::listen({"127.0.0.1", 0});
    dead = parked.local_addr();
  }

  net::ShardRouterOptions ropts;
  ropts.miners = {dead};
  ropts.shards = 1;
  ropts.replicas = 1;
  ropts.seed = 0x5A9;
  ropts.parties = 3;
  ropts.client.timeout_ms = 500;
  ropts.negative_cache_ms = 60'000;  // the window outlives this test
  net::ShardRouter router(ropts);

  // First request pays the real connect refusal...
  try {
    (void)router.mine_named("record-count");
    ADD_FAILURE() << "expected ServeError{kUnavailable} for a dead cluster";
  } catch (const net::ServeError& e) {
    EXPECT_EQ(e.code(), proto::ServeErrorCode::kUnavailable);
    EXPECT_EQ(std::string(e.what()).find("negative-connect cache"), std::string::npos)
        << "the first failure must be the real dial: " << e.what();
  }
  // ...and every failover inside the window skips without dialing.
  try {
    (void)router.mine_named("record-count");
    ADD_FAILURE() << "expected the cached refusal";
  } catch (const net::ServeError& e) {
    EXPECT_NE(std::string(e.what()).find("negative-connect cache"), std::string::npos)
        << e.what();
  }
  EXPECT_GE(router.failovers(), 2u);
}

// ---- rejoin / resync -----------------------------------------------------

TEST(SelfHealing, RestartedMinerResyncsFromALivePeerAndServesIdentically) {
  Cluster cluster(9104);
  Member a;
  net::MinerDaemonOptions da;
  da.shards = 1;
  a.start(cluster.shards, cluster.sap_opts, cluster.seed, da);

  // Advance the donor past the exchange install: two contributions.
  const auto wires = cluster.wires(2);
  {
    net::ServeClient direct(a.daemon->reactor_addr(), cluster.seed, cluster.k);
    (void)direct.contribute_wire(wires[0]);
    (void)direct.contribute_wire(wires[1]);
    direct.bye();
  }

  // The snapshot door: ARRIVAL-order rows + keys at the donor's epoch.
  {
    net::ServeClient probe(a.daemon->reactor_addr(), cluster.seed, cluster.k);
    const auto snap = probe.shard_snapshot(0);
    EXPECT_EQ(snap.shard_epoch, 3u);
    EXPECT_EQ(snap.keys.size(), snap.rows.size());
    EXPECT_GT(snap.rows.size(), 100u);  // exchange pool + both batches
    probe.bye();
  }

  // A "restarted" miner: same exchange (epoch 1 state), resync_peers names
  // the live donor — run() adopts the donor's shard before serving starts.
  Member b;
  net::MinerDaemonOptions db;
  db.shards = 1;
  db.resync_peers = {a.daemon->reactor_addr()};
  b.start(cluster.shards, cluster.sap_opts, cluster.seed, db);
  for (int i = 0; i < 1000 && !b.daemon->serving(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(b.daemon->serving()) << "rejoined miner never started serving";

  net::ServeClient ca(a.daemon->reactor_addr(), cluster.seed, cluster.k);
  net::ServeClient cb(b.daemon->reactor_addr(), cluster.seed, cluster.k);
  for (const char* job : kChaosJobs) {
    const auto donor = ca.mine_named(job, job_params(job));
    const auto rejoined = cb.mine_named(job, job_params(job));
    EXPECT_EQ(rejoined.values, donor.values) << job << " diverged after resync";
    EXPECT_EQ(rejoined.pool_epoch, donor.pool_epoch);
    EXPECT_EQ(rejoined.pool_epoch, 3u);
  }
  ca.bye();
  cb.bye();
  a.stop();
  b.stop();
}

}  // namespace
