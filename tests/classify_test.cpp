// Tests for sap::ml: KNN, SVM(RBF)/SMO, perceptron, evaluation utilities —
// including the rotation-invariance property that underpins the paper.
#include <gtest/gtest.h>

#include <cmath>

#include <numbers>

#include "classify/knn.hpp"
#include "classify/naive_bayes.hpp"
#include "classify/perceptron.hpp"
#include "classify/svm.hpp"
#include "common/error.hpp"
#include "data/normalize.hpp"
#include "data/synthetic.hpp"
#include "linalg/orthogonal.hpp"
#include "perturb/geometric.hpp"
#include "rng/rng.hpp"

namespace {

using sap::data::Dataset;
using sap::linalg::Matrix;
using sap::rng::Engine;

/// Two well-separated Gaussian blobs — a sanity problem every classifier
/// must ace.
Dataset blobs(std::size_t n_per_class, std::uint64_t seed) {
  Engine eng(seed);
  Matrix f(2 * n_per_class, 2);
  std::vector<int> labels(2 * n_per_class);
  for (std::size_t i = 0; i < n_per_class; ++i) {
    f(i, 0) = eng.normal(-2.0, 0.5);
    f(i, 1) = eng.normal(-2.0, 0.5);
    labels[i] = 0;
    f(n_per_class + i, 0) = eng.normal(2.0, 0.5);
    f(n_per_class + i, 1) = eng.normal(2.0, 0.5);
    labels[n_per_class + i] = 1;
  }
  return {"blobs", std::move(f), std::move(labels)};
}

/// XOR pattern — linearly inseparable; separable by RBF-SVM and KNN.
Dataset xor_data(std::size_t n_per_corner, std::uint64_t seed) {
  Engine eng(seed);
  Matrix f(4 * n_per_corner, 2);
  std::vector<int> labels(4 * n_per_corner);
  const double centers[4][2] = {{-1, -1}, {1, 1}, {-1, 1}, {1, -1}};
  for (std::size_t corner = 0; corner < 4; ++corner) {
    for (std::size_t i = 0; i < n_per_corner; ++i) {
      const std::size_t row = corner * n_per_corner + i;
      f(row, 0) = eng.normal(centers[corner][0], 0.25);
      f(row, 1) = eng.normal(centers[corner][1], 0.25);
      labels[row] = corner < 2 ? 0 : 1;
    }
  }
  return {"xor", std::move(f), std::move(labels)};
}

// ------------------------------------------------------------ KNN

TEST(Knn, SeparatesBlobs) {
  const Dataset train = blobs(60, 1);
  const Dataset test = blobs(40, 2);
  sap::ml::Knn knn(5);
  knn.fit(train);
  EXPECT_GT(sap::ml::accuracy(knn, test), 0.97);
}

TEST(Knn, SolvesXor) {
  const Dataset train = xor_data(40, 3);
  const Dataset test = xor_data(25, 4);
  sap::ml::Knn knn(5);
  knn.fit(train);
  EXPECT_GT(sap::ml::accuracy(knn, test), 0.95);
}

TEST(Knn, OneNearestNeighborMemorizesTraining) {
  const Dataset train = blobs(30, 5);
  sap::ml::Knn knn(1);
  knn.fit(train);
  EXPECT_DOUBLE_EQ(sap::ml::accuracy(knn, train), 1.0);
}

TEST(Knn, KLargerThanTrainingSetStillWorks) {
  const Dataset train = blobs(5, 6);
  sap::ml::Knn knn(100);
  knn.fit(train);
  // Degenerates to majority class; must not crash or read out of range.
  const int pred = knn.predict(train.record(0));
  EXPECT_TRUE(pred == 0 || pred == 1);
}

TEST(Knn, InvalidUsagesThrow) {
  EXPECT_THROW(sap::ml::Knn(0), sap::Error);
  sap::ml::Knn knn(3);
  const std::vector<double> probe{0.0, 0.0};
  EXPECT_THROW((void)knn.predict(probe), sap::Error);  // before fit
  knn.fit(blobs(10, 7));
  const std::vector<double> wrong_dims{0.0, 0.0, 0.0};
  EXPECT_THROW((void)knn.predict(wrong_dims), sap::Error);
}

TEST(Knn, MulticlassOnSyntheticWine) {
  // Normalize first, as the paper's pipeline does — KNN is scale-sensitive.
  const Dataset raw = sap::data::make_uci("Wine", 8);
  sap::data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  const Dataset ds(raw.name(), norm.transform(raw.features()), raw.labels());
  Engine eng(9);
  const auto split = sap::data::stratified_split(ds, 0.7, eng);
  sap::ml::Knn knn(5);
  knn.fit(split.train);
  EXPECT_GT(sap::ml::accuracy(knn, split.test), 0.8);
}

// ------------------------------------------------------------ kd-tree

TEST(KdTree, NearestSingleObviousPoint) {
  Matrix pts{{0, 0}, {10, 10}, {-5, 3}};
  sap::ml::KdTree tree(pts);
  const std::vector<double> q{9.0, 9.0};
  const auto nn = tree.nearest(q, 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].index, 1u);
  EXPECT_NEAR(nn[0].distance_sq, 2.0, 1e-12);
}

TEST(KdTree, KClampedToSize) {
  Matrix pts{{0.0}, {1.0}};
  sap::ml::KdTree tree(pts);
  const std::vector<double> q{0.4};
  EXPECT_EQ(tree.nearest(q, 10).size(), 2u);
}

TEST(KdTree, DuplicatePointsHandled) {
  Matrix pts(40, 2, 0.5);  // all identical
  sap::ml::KdTree tree(pts);
  const std::vector<double> q{0.5, 0.5};
  const auto nn = tree.nearest(q, 5);
  ASSERT_EQ(nn.size(), 5u);
  // Tie-break by index: the five smallest indices.
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(nn[i].index, i);
}

TEST(KdTree, InvalidUsagesThrow) {
  EXPECT_THROW(sap::ml::KdTree{Matrix{}}, sap::Error);
  Matrix pts{{0.0, 0.0}};
  sap::ml::KdTree tree(pts);
  const std::vector<double> bad{1.0};
  EXPECT_THROW(tree.nearest(bad, 1), sap::Error);
  const std::vector<double> ok{1.0, 2.0};
  EXPECT_THROW(tree.nearest(ok, 0), sap::Error);
}

class KdTreeEquivalence : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(KdTreeEquivalence, MatchesBruteForceExactly) {
  // The load-bearing property: kd-tree results (indices, distances, order)
  // must be bit-for-bit the brute-force answer, including ties.
  const auto [n, d] = GetParam();
  Engine eng(1000 + n * 7 + d);
  // Quantized coordinates to force plenty of exact distance ties.
  Matrix pts(n, d);
  for (auto& v : pts.data()) v = std::round(eng.uniform(0.0, 6.0)) / 2.0;
  sap::ml::KdTree tree(pts);

  for (int trial = 0; trial < 25; ++trial) {
    std::vector<double> q(d);
    for (auto& v : q) v = std::round(eng.uniform(0.0, 6.0)) / 2.0;
    const std::size_t k = 1 + eng.uniform_index(8);

    // Brute force with the same (distance, index) ordering.
    std::vector<std::pair<double, std::size_t>> brute;
    brute.reserve(n);
    for (int i = 0; i < n; ++i) {
      double acc = 0.0;
      auto row = pts.row(static_cast<std::size_t>(i));
      for (int f = 0; f < d; ++f) {
        const double diff = row[static_cast<std::size_t>(f)] - q[static_cast<std::size_t>(f)];
        acc += diff * diff;
      }
      brute.emplace_back(acc, static_cast<std::size_t>(i));
    }
    std::sort(brute.begin(), brute.end());

    const auto got = tree.nearest(q, k);
    const std::size_t expect_k = std::min<std::size_t>(k, static_cast<std::size_t>(n));
    ASSERT_EQ(got.size(), expect_k);
    for (std::size_t i = 0; i < expect_k; ++i) {
      EXPECT_EQ(got[i].index, brute[i].second) << "rank " << i;
      EXPECT_DOUBLE_EQ(got[i].distance_sq, brute[i].first) << "rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SizesAndDims, KdTreeEquivalence,
                         ::testing::Values(std::pair{10, 2}, std::pair{50, 3},
                                           std::pair{200, 2}, std::pair{500, 5},
                                           std::pair{1000, 8}, std::pair{64, 1}));

TEST(Knn, BackendsAgreeOnRealDataset) {
  const Dataset ds = sap::data::make_uci("Diabetes", 40);
  Engine eng(41);
  const auto split = sap::data::stratified_split(ds, 0.7, eng);
  sap::ml::Knn brute(5, sap::ml::KnnBackend::kBruteForce);
  sap::ml::Knn tree(5, sap::ml::KnnBackend::kKdTree);
  brute.fit(split.train);
  tree.fit(split.train);
  EXPECT_FALSE(brute.using_kdtree());
  EXPECT_TRUE(tree.using_kdtree());
  for (std::size_t i = 0; i < split.test.size(); ++i)
    ASSERT_EQ(brute.predict(split.test.record(i)), tree.predict(split.test.record(i)))
        << "record " << i;
}

TEST(Knn, AutoBackendSwitchesOnSize) {
  sap::ml::Knn small(3);
  small.fit(blobs(20, 42));  // 40 records < threshold
  EXPECT_FALSE(small.using_kdtree());
  sap::ml::Knn large(3);
  large.fit(blobs(200, 43));  // 400 records >= threshold
  EXPECT_TRUE(large.using_kdtree());
}

// ------------------------------------------------ incremental refit (partial_fit)

Dataset normalized(const Dataset& ds) {
  sap::data::MinMaxNormalizer norm;
  norm.fit(ds.features());
  return {ds.name(), norm.transform(ds.features()), ds.labels()};
}

TEST(KdTree, InsertMatchesFreshBuildExactly) {
  Engine eng(4242);
  Matrix all(520, 4);
  for (auto& v : all.data()) v = std::round(eng.uniform(0.0, 6.0)) / 2.0;  // force ties
  Matrix head(400, 4);
  Matrix tail(120, 4);
  for (std::size_t i = 0; i < 400; ++i) head.set_row(i, all.row(i));
  for (std::size_t i = 0; i < 120; ++i) tail.set_row(i, all.row(400 + i));

  sap::ml::KdTree grown(head);
  grown.insert(tail);
  const sap::ml::KdTree fresh(all);
  ASSERT_EQ(grown.size(), fresh.size());

  for (int trial = 0; trial < 25; ++trial) {
    std::vector<double> q(4);
    for (auto& v : q) v = std::round(eng.uniform(0.0, 6.0)) / 2.0;
    const std::size_t k = 1 + eng.uniform_index(10);
    const auto a = grown.nearest(q, k);
    const auto b = fresh.nearest(q, k);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].index, b[i].index) << "rank " << i;
      EXPECT_DOUBLE_EQ(a[i].distance_sq, b[i].distance_sq) << "rank " << i;
    }
  }
}

TEST(KdTree, InsertRebuildsOnceTheTailOutgrowsThePrefix) {
  Engine eng(4243);
  Matrix head(64, 3);
  for (auto& v : head.data()) v = eng.uniform();
  sap::ml::KdTree tree(head);
  EXPECT_EQ(tree.tail_size(), 0u);
  Matrix small(8, 3);
  for (auto& v : small.data()) v = eng.uniform();
  tree.insert(small);
  EXPECT_EQ(tree.tail_size(), 8u);  // below the rebuild threshold
  Matrix big(64, 3);
  for (auto& v : big.data()) v = eng.uniform();
  tree.insert(big);
  EXPECT_EQ(tree.tail_size(), 0u);  // tail > prefix/2 → rebuilt
  EXPECT_EQ(tree.size(), 136u);
  EXPECT_THROW(tree.insert(Matrix(1, 2, 0.0)), sap::Error);
}

TEST(Knn, PartialFitIsPredictionIdenticalToFullRefit) {
  // The incremental-refit contract (DESIGN.md §6): Knn's partial_fit result
  // must predict exactly like a full refit on the concatenated data — for
  // the kd-tree backend, the brute backend, and an auto-threshold crossing.
  const Dataset ds = normalized(sap::data::make_uci("Wine", 50));
  const Dataset head = ds.slice(0, 130);
  const Dataset tail = ds.slice(130, ds.size());

  for (const auto backend : {sap::ml::KnnBackend::kAuto, sap::ml::KnnBackend::kBruteForce,
                             sap::ml::KnnBackend::kKdTree}) {
    sap::ml::Knn base(5, backend);
    base.fit(head);
    const auto extended = base.partial_fit(tail);
    sap::ml::Knn full(5, backend);
    full.fit(ds);
    for (std::size_t i = 0; i < ds.size(); ++i)
      ASSERT_EQ(extended->predict(ds.record(i)), full.predict(ds.record(i)))
          << "backend " << static_cast<int>(backend) << " record " << i;
    // And chained appends (adaptor for many small contributions).
    const auto twice = base.partial_fit(ds.slice(130, 140))->partial_fit(ds.slice(140, ds.size()));
    for (std::size_t i = 0; i < ds.size(); ++i)
      ASSERT_EQ(twice->predict(ds.record(i)), full.predict(ds.record(i)));
  }
}

TEST(Knn, PartialFitCrossesTheAutoTreeThreshold) {
  const Dataset big = blobs(200, 77);  // 400 records
  const Dataset head = big.slice(0, 200);
  const Dataset tail = big.slice(200, 400);
  sap::ml::Knn base(3);  // kAuto: 200 records → brute force
  base.fit(head);
  EXPECT_FALSE(base.using_kdtree());
  const auto extended = base.partial_fit(tail);
  const auto* knn = dynamic_cast<const sap::ml::Knn*>(extended.get());
  ASSERT_NE(knn, nullptr);
  EXPECT_TRUE(knn->using_kdtree());  // 400 records → tree built once
  sap::ml::Knn full(3);
  full.fit(big);
  for (std::size_t i = 0; i < big.size(); ++i)
    ASSERT_EQ(knn->predict(big.record(i)), full.predict(big.record(i)));
}

TEST(NaiveBayes, PartialFitIsBitIdenticalToFullRefit) {
  // Stronger than the 1e-12 contract bar: the sufficient-statistics
  // accumulation performs the same per-class addition sequence either way,
  // so the incremental model is bit-identical to the full refit.
  const Dataset ds = normalized(sap::data::make_uci("Iris", 51));
  const Dataset head = ds.slice(0, 90);
  const Dataset tail = ds.slice(90, ds.size());

  sap::ml::GaussianNaiveBayes base(1e-9);
  base.fit(head);
  const auto extended = base.partial_fit(tail);
  sap::ml::GaussianNaiveBayes full(1e-9);
  full.fit(ds);
  for (std::size_t i = 0; i < ds.size(); ++i)
    ASSERT_EQ(extended->predict(ds.record(i)), full.predict(ds.record(i))) << i;
  EXPECT_EQ(sap::ml::accuracy(*extended, ds), sap::ml::accuracy(full, ds));
}

TEST(NaiveBayes, PartialFitAdmitsANewClass) {
  const Dataset ds = blobs(40, 52);  // classes {0, 1}
  Matrix extra(10, 2);
  std::vector<int> extra_labels(10, 2);  // a third class appears mid-stream
  Engine eng(53);
  for (std::size_t i = 0; i < 10; ++i) {
    extra(i, 0) = eng.normal(0.0, 0.3);
    extra(i, 1) = eng.normal(5.0, 0.3);
  }
  const Dataset late("late", extra, extra_labels);

  sap::ml::GaussianNaiveBayes base;
  base.fit(ds);
  const auto extended = base.partial_fit(late);
  sap::ml::GaussianNaiveBayes full;
  full.fit(sap::data::Dataset::concat(ds, late));
  for (std::size_t i = 0; i < late.size(); ++i) {
    EXPECT_EQ(extended->predict(late.record(i)), 2) << i;
    EXPECT_EQ(extended->predict(late.record(i)), full.predict(late.record(i)));
  }
}

TEST(Classifier, PartialFitUnsupportedModelsThrowAndReportIt) {
  const Dataset ds = blobs(30, 54);
  sap::ml::Svm svm;
  svm.fit(ds);
  EXPECT_FALSE(svm.supports_partial_fit());
  EXPECT_THROW((void)svm.partial_fit(ds), sap::Error);
  sap::ml::Perceptron perceptron;
  perceptron.fit(ds);
  EXPECT_FALSE(perceptron.supports_partial_fit());
  EXPECT_THROW((void)perceptron.partial_fit(ds), sap::Error);
  sap::ml::Knn knn;
  EXPECT_TRUE(knn.supports_partial_fit());
  EXPECT_THROW((void)knn.partial_fit(ds), sap::Error);  // before fit
  sap::ml::GaussianNaiveBayes nb;
  EXPECT_TRUE(nb.supports_partial_fit());
  EXPECT_THROW((void)nb.partial_fit(ds), sap::Error);  // before fit
}

// ------------------------------------------------------------ SVM

TEST(Svm, SeparatesBlobs) {
  const Dataset train = blobs(60, 10);
  const Dataset test = blobs(40, 11);
  sap::ml::Svm svm;
  svm.fit(train);
  EXPECT_GT(sap::ml::accuracy(svm, test), 0.97);
}

TEST(Svm, SolvesXorWithRbfKernel) {
  const Dataset train = xor_data(40, 12);
  const Dataset test = xor_data(25, 13);
  sap::ml::Svm svm;
  svm.fit(train);
  EXPECT_GT(sap::ml::accuracy(svm, test), 0.93);
}

TEST(Svm, MulticlassOneVsOne) {
  const Dataset ds = sap::data::make_uci("Iris", 14);
  Engine eng(15);
  const auto split = sap::data::stratified_split(ds, 0.7, eng);
  sap::ml::Svm svm;
  svm.fit(split.train);
  EXPECT_GT(sap::ml::accuracy(svm, split.test), 0.85);
}

TEST(BinarySvm, DecisionSignMatchesSide) {
  const Dataset train = blobs(50, 16);
  Matrix x = train.features();
  std::vector<int> y(train.size());
  for (std::size_t i = 0; i < train.size(); ++i) y[i] = train.label(i) == 0 ? -1 : 1;
  sap::ml::BinarySvm svm;
  svm.fit(x, y);
  EXPECT_TRUE(svm.trained());
  EXPECT_GT(svm.support_vector_count(), 0u);
  const std::vector<double> neg{-2.0, -2.0};
  const std::vector<double> pos{2.0, 2.0};
  EXPECT_LT(svm.decision(neg), 0.0);
  EXPECT_GT(svm.decision(pos), 0.0);
}

TEST(BinarySvm, RejectsBadLabels) {
  Matrix x(4, 2);
  sap::ml::BinarySvm svm;
  std::vector<int> bad{0, 1, 0, 1};
  EXPECT_THROW(svm.fit(x, bad), sap::Error);
}

TEST(BinarySvm, GammaHeuristicIsPositive) {
  const Dataset train = blobs(30, 17);
  Matrix x = train.features();
  std::vector<int> y(train.size());
  for (std::size_t i = 0; i < train.size(); ++i) y[i] = train.label(i) == 0 ? -1 : 1;
  sap::ml::BinarySvm svm;
  svm.fit(x, y);
  EXPECT_GT(svm.gamma(), 0.0);
}

// ------------------------------------------------------------ Perceptron

TEST(Perceptron, SeparatesBlobs) {
  const Dataset train = blobs(60, 18);
  const Dataset test = blobs(40, 19);
  sap::ml::Perceptron model;
  model.fit(train);
  EXPECT_GT(sap::ml::accuracy(model, test), 0.95);
}

TEST(Perceptron, MulticlassIris) {
  const Dataset ds = sap::data::make_uci("Iris", 20);
  Engine eng(21);
  const auto split = sap::data::stratified_split(ds, 0.7, eng);
  sap::ml::Perceptron model;
  model.fit(split.train);
  EXPECT_GT(sap::ml::accuracy(model, split.test), 0.75);
}

// ------------------------------------------------------------ Naive Bayes

TEST(NaiveBayes, SeparatesBlobs) {
  const Dataset train = blobs(60, 30);
  const Dataset test = blobs(40, 31);
  sap::ml::GaussianNaiveBayes nb;
  nb.fit(train);
  EXPECT_GT(sap::ml::accuracy(nb, test), 0.97);
}

TEST(NaiveBayes, MulticlassIris) {
  const Dataset ds = sap::data::make_uci("Iris", 32);
  Engine eng(33);
  const auto split = sap::data::stratified_split(ds, 0.7, eng);
  sap::ml::GaussianNaiveBayes nb;
  nb.fit(split.train);
  EXPECT_GT(sap::ml::accuracy(nb, split.test), 0.8);
}

TEST(NaiveBayes, HandlesConstantFeatureViaSmoothing) {
  Matrix f(20, 2);
  std::vector<int> labels(20);
  Engine eng(34);
  for (std::size_t i = 0; i < 20; ++i) {
    f(i, 0) = 1.0;  // constant feature: zero variance without smoothing
    f(i, 1) = (i < 10) ? eng.normal(-2.0, 0.3) : eng.normal(2.0, 0.3);
    labels[i] = i < 10 ? 0 : 1;
  }
  const Dataset ds("const", std::move(f), std::move(labels));
  sap::ml::GaussianNaiveBayes nb;
  nb.fit(ds);
  EXPECT_DOUBLE_EQ(sap::ml::accuracy(nb, ds), 1.0);
}

TEST(NaiveBayes, IsNotRotationInvariant) {
  // The boundary of the paper's invariance claim. Classes share a zero mean
  // and are separated only by axis-aligned VARIANCES (class 0 spreads along
  // y, class 1 along x). Axis-aligned NB nails this via its per-feature
  // variance estimates; a 45-degree rotation makes both marginal variances
  // identical across classes (R diag(a,b) R^T has equal diagonal), so NB
  // collapses toward chance. KNN, by contrast, is untouched.
  Engine eng(35);
  const std::size_t n = 300;
  Matrix f(2 * n, 2);
  std::vector<int> labels(2 * n);
  for (std::size_t i = 0; i < 2 * n; ++i) {
    const bool pos = i >= n;
    f(i, 0) = eng.normal(0.0, pos ? 3.0 : 0.3);
    f(i, 1) = eng.normal(0.0, pos ? 0.3 : 3.0);
    labels[i] = pos;
  }
  const Dataset ds("aniso", std::move(f), std::move(labels));
  Engine split_eng(36);
  const auto split = sap::data::stratified_split(ds, 0.7, split_eng);

  sap::ml::GaussianNaiveBayes nb_orig;
  nb_orig.fit(split.train);
  const double acc_orig = sap::ml::accuracy(nb_orig, split.test);
  EXPECT_GT(acc_orig, 0.9);  // axis-aligned variances: easy for NB

  // Rotate by 45 degrees: per-class marginal variances become identical.
  const Matrix rot = sap::linalg::givens(2, 0, 1, std::numbers::pi / 4);
  const sap::perturb::GeometricPerturbation g(rot, sap::linalg::Vector{0.0, 0.0}, 0.0);
  const Dataset train_r("r", g.apply_noiseless(split.train.features_T()).transpose(),
                        split.train.labels());
  const Dataset test_r("r", g.apply_noiseless(split.test.features_T()).transpose(),
                       split.test.labels());
  sap::ml::GaussianNaiveBayes nb_rot;
  nb_rot.fit(train_r);
  const double acc_rot = sap::ml::accuracy(nb_rot, test_r);
  EXPECT_LT(acc_rot, acc_orig - 0.1);  // material degradation
}

TEST(NaiveBayes, InvalidUsagesThrow) {
  EXPECT_THROW(sap::ml::GaussianNaiveBayes(-1.0), sap::Error);
  sap::ml::GaussianNaiveBayes nb;
  const std::vector<double> probe{0.0, 0.0};
  EXPECT_THROW((void)nb.predict(probe), sap::Error);
}

// ------------------------------------------------------------ invariance

class RotationInvariance : public ::testing::TestWithParam<const char*> {};

TEST_P(RotationInvariance, AccuracyUnchangedByNoiselessPerturbation) {
  // The geometric-invariance property (paper §1): training and testing in a
  // rotated+translated space gives identical distance relationships, hence
  // identical KNN votes and (near-)identical SVM/RBF models.
  const Dataset ds = sap::data::make_uci(GetParam(), 22);
  Engine eng(23);
  sap::data::MinMaxNormalizer norm;
  norm.fit(ds.features());
  Dataset normalized(ds.name(), norm.transform(ds.features()), ds.labels());
  const auto split = sap::data::stratified_split(normalized, 0.7, eng);

  const auto g = sap::perturb::GeometricPerturbation::random(ds.dims(), 0.0, eng);
  const Dataset train_p(ds.name(), g.apply_noiseless(split.train.features_T()).transpose(),
                        split.train.labels());
  const Dataset test_p(ds.name(), g.apply_noiseless(split.test.features_T()).transpose(),
                       split.test.labels());

  sap::ml::Knn knn_orig(5), knn_pert(5);
  knn_orig.fit(split.train);
  knn_pert.fit(train_p);
  const double acc_orig = sap::ml::accuracy(knn_orig, split.test);
  const double acc_pert = sap::ml::accuracy(knn_pert, test_p);
  EXPECT_NEAR(acc_orig, acc_pert, 1e-9);  // KNN: exactly invariant

  sap::ml::Svm svm_orig, svm_pert;
  svm_orig.fit(split.train);
  svm_pert.fit(train_p);
  const double svm_acc_orig = sap::ml::accuracy(svm_orig, split.test);
  const double svm_acc_pert = sap::ml::accuracy(svm_pert, test_p);
  EXPECT_NEAR(svm_acc_orig, svm_acc_pert, 0.03);  // SMO randomness tolerance
}

INSTANTIATE_TEST_SUITE_P(Datasets, RotationInvariance,
                         ::testing::Values("Iris", "Wine", "Diabetes"));

// ------------------------------------------------------------ evaluation

TEST(Evaluation, AccuracyBounds) {
  const Dataset train = blobs(30, 24);
  sap::ml::Knn knn(1);
  knn.fit(train);
  const double acc = sap::ml::accuracy(knn, train);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(Evaluation, ConfusionMatrixRowSumsMatchClassCounts) {
  const Dataset ds = sap::data::make_uci("Iris", 25);
  Engine eng(26);
  const auto split = sap::data::stratified_split(ds, 0.7, eng);
  sap::ml::Knn knn(5);
  knn.fit(split.train);
  const auto conf = sap::ml::confusion_matrix(knn, split.test);
  ASSERT_EQ(conf.classes.size(), 3u);
  const auto counts = split.test.class_counts();
  for (std::size_t i = 0; i < conf.classes.size(); ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < conf.classes.size(); ++j) row_sum += conf.counts(i, j);
    EXPECT_DOUBLE_EQ(row_sum, static_cast<double>(counts[i]));
  }
}

TEST(Evaluation, EmptyTestSetThrows) {
  sap::ml::Knn knn(1);
  knn.fit(blobs(5, 27));
  const Dataset empty("empty", Matrix(), {});
  EXPECT_THROW(sap::ml::accuracy(knn, empty), sap::Error);
}

}  // namespace
