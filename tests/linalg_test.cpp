// Unit + property tests for sap::linalg: matrix algebra, decompositions,
// random orthogonal sampling, Procrustes, statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>

#include "common/error.hpp"
#include "linalg/decompose.hpp"
#include "linalg/matrix.hpp"
#include "linalg/orthogonal.hpp"
#include "linalg/stats.hpp"
#include "rng/rng.hpp"

namespace {

using sap::linalg::Matrix;
using sap::linalg::Vector;
using sap::rng::Engine;

Matrix random_matrix(std::size_t r, std::size_t c, Engine& eng) {
  return Matrix::generate(r, c, [&] { return eng.normal(); });
}

// ------------------------------------------------------------ Matrix basics

TEST(Matrix, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), sap::Error);
}

TEST(Matrix, OutOfRangeAccessThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), sap::Error);
  EXPECT_THROW(m(0, 2), sap::Error);
}

TEST(Matrix, IdentityProperties) {
  const Matrix i = Matrix::identity(4);
  EXPECT_DOUBLE_EQ(i(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(i(1, 3), 0.0);
  Engine eng(1);
  const Matrix a = random_matrix(4, 4, eng);
  EXPECT_TRUE((i * a).approx_equal(a, 1e-14));
  EXPECT_TRUE((a * i).approx_equal(a, 1e-14));
}

TEST(Matrix, RowColAccessors) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  auto r1 = m.row(1);
  EXPECT_DOUBLE_EQ(r1[2], 6.0);
  const Vector c2 = m.col(2);
  EXPECT_DOUBLE_EQ(c2[0], 3.0);
  EXPECT_DOUBLE_EQ(c2[1], 6.0);
}

TEST(Matrix, SetRowSetCol) {
  Matrix m(2, 2);
  const Vector row{7.0, 8.0};
  m.set_row(0, row);
  const Vector col{9.0, 10.0};
  m.set_col(1, col);
  EXPECT_DOUBLE_EQ(m(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 9.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 10.0);
}

TEST(Matrix, TransposeInvolution) {
  Engine eng(2);
  const Matrix a = random_matrix(3, 5, eng);
  EXPECT_TRUE(a.transpose().transpose().approx_equal(a, 0.0));
  EXPECT_EQ(a.transpose().rows(), 5u);
}

TEST(Matrix, BlockExtraction) {
  Matrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const Matrix b = m.block(1, 1, 2, 2);
  EXPECT_TRUE(b.approx_equal(Matrix{{5, 6}, {8, 9}}, 0.0));
  EXPECT_THROW(m.block(2, 2, 2, 2), sap::Error);
}

TEST(Matrix, ConcatHorizontalVertical) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5}, {6}};
  const Matrix h = Matrix::hcat(a, b);
  EXPECT_TRUE(h.approx_equal(Matrix{{1, 2, 5}, {3, 4, 6}}, 0.0));
  Matrix c{{7, 8}};
  const Matrix v = Matrix::vcat(a, c);
  EXPECT_TRUE(v.approx_equal(Matrix{{1, 2}, {3, 4}, {7, 8}}, 0.0));
  EXPECT_THROW(Matrix::hcat(a, c), sap::Error);
  EXPECT_THROW(Matrix::vcat(a, b), sap::Error);
}

TEST(Matrix, ArithmeticAndScaling) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{4, 3}, {2, 1}};
  EXPECT_TRUE((a + b).approx_equal(Matrix{{5, 5}, {5, 5}}, 0.0));
  EXPECT_TRUE((a - b).approx_equal(Matrix{{-3, -1}, {1, 3}}, 0.0));
  EXPECT_TRUE((2.0 * a).approx_equal(Matrix{{2, 4}, {6, 8}}, 0.0));
  Matrix c(3, 3);
  EXPECT_THROW(a += c, sap::Error);
}

TEST(Matrix, ProductAgainstHandComputed) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix b{{7, 8}, {9, 10}, {11, 12}};
  const Matrix c = a * b;
  EXPECT_TRUE(c.approx_equal(Matrix{{58, 64}, {139, 154}}, 1e-12));
  EXPECT_THROW(a * a, sap::Error);  // 2x3 * 2x3: inner dimensions mismatch
}

TEST(Matrix, ProductAssociativity) {
  Engine eng(3);
  const Matrix a = random_matrix(4, 3, eng);
  const Matrix b = random_matrix(3, 5, eng);
  const Matrix c = random_matrix(5, 2, eng);
  EXPECT_TRUE(((a * b) * c).approx_equal(a * (b * c), 1e-10));
}

TEST(Matrix, MatvecMatchesProduct) {
  Engine eng(4);
  const Matrix a = random_matrix(4, 3, eng);
  const Vector x{1.0, -2.0, 0.5};
  const Vector y = a.matvec(x);
  Matrix xm(3, 1);
  xm.set_col(0, x);
  const Matrix ym = a * xm;
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(y[i], ym(i, 0), 1e-13);
}

TEST(Matrix, MatvecTransposedMatchesTransposeProduct) {
  Engine eng(5);
  const Matrix a = random_matrix(4, 3, eng);
  const Vector x{1.0, 2.0, 3.0, 4.0};
  const Vector y = a.matvec_transposed(x);
  const Vector y2 = a.transpose().matvec(x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(y[i], y2[i], 1e-13);
}

TEST(Matrix, Norms) {
  Matrix m{{3, 4}, {0, 0}};
  EXPECT_DOUBLE_EQ(m.norm_fro(), 5.0);
  EXPECT_DOUBLE_EQ(m.max_abs(), 4.0);
}

TEST(VectorOps, DotNormAxpyDistance) {
  const Vector a{1, 2, 3};
  const Vector b{4, 5, 6};
  EXPECT_DOUBLE_EQ(sap::linalg::dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(sap::linalg::norm2(Vector{3, 4}), 5.0);
  Vector y{1, 1, 1};
  sap::linalg::axpy(2.0, a, y);
  EXPECT_DOUBLE_EQ(y[2], 7.0);
  EXPECT_DOUBLE_EQ(sap::linalg::distance(Vector{0, 0}, Vector{3, 4}), 5.0);
}

// ------------------------------------------------------------ QR

class QrProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QrProperty, ReconstructsAndOrthogonal) {
  const auto [m, n] = GetParam();
  Engine eng(100 + m * 17 + n);
  const Matrix a = random_matrix(m, n, eng);
  const auto f = sap::linalg::qr_decompose(a);
  EXPECT_TRUE((f.q * f.r).approx_equal(a, 1e-10));
  EXPECT_LT(sap::linalg::orthogonality_defect(f.q), 1e-10);
  // R upper triangular.
  for (int i = 1; i < m; ++i)
    for (int j = 0; j < std::min(i, n); ++j) EXPECT_DOUBLE_EQ(f.r(i, j), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrProperty,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 2}, std::pair{5, 5},
                                           std::pair{8, 3}, std::pair{10, 10},
                                           std::pair{20, 7}, std::pair{3, 8}));

TEST(Qr, RankDeficientStillFactorizes) {
  Matrix a{{1, 2}, {2, 4}, {3, 6}};  // rank 1
  const auto f = sap::linalg::qr_decompose(a);
  EXPECT_TRUE((f.q * f.r).approx_equal(a, 1e-10));
}

// ------------------------------------------------------------ LU

class LuProperty : public ::testing::TestWithParam<int> {};

TEST_P(LuProperty, SolveAndInverse) {
  const int n = GetParam();
  Engine eng(200 + n);
  // Diagonally dominated to stay well-conditioned.
  Matrix a = random_matrix(n, n, eng);
  for (int i = 0; i < n; ++i) a(i, i) += n;
  const auto f = sap::linalg::lu_decompose(a);

  Vector b(n);
  for (auto& v : b) v = eng.normal();
  const Vector x = sap::linalg::lu_solve(f, b);
  const Vector ax = a.matvec(x);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);

  const Matrix inv = sap::linalg::inverse(a);
  EXPECT_TRUE((a * inv).approx_equal(Matrix::identity(n), 1e-8));
  EXPECT_TRUE((inv * a).approx_equal(Matrix::identity(n), 1e-8));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuProperty, ::testing::Values(1, 2, 3, 5, 8, 16, 32));

TEST(Lu, SingularMatrixThrows) {
  Matrix a{{1, 2}, {2, 4}};
  EXPECT_THROW(sap::linalg::lu_decompose(a), sap::Error);
  EXPECT_THROW(sap::linalg::inverse(a), sap::Error);
}

TEST(Lu, DeterminantKnownValues) {
  EXPECT_NEAR(sap::linalg::determinant(Matrix{{2, 0}, {0, 3}}), 6.0, 1e-12);
  EXPECT_NEAR(sap::linalg::determinant(Matrix{{0, 1}, {1, 0}}), -1.0, 1e-12);
  EXPECT_NEAR(sap::linalg::determinant(Matrix{{1, 2}, {2, 4}}), 0.0, 1e-12);
}

TEST(Lu, DeterminantMultiplicative) {
  Engine eng(7);
  const Matrix a = random_matrix(5, 5, eng);
  const Matrix b = random_matrix(5, 5, eng);
  const double da = sap::linalg::determinant(a);
  const double db = sap::linalg::determinant(b);
  EXPECT_NEAR(sap::linalg::determinant(a * b), da * db,
              1e-8 * std::max(1.0, std::abs(da * db)));
}

// ------------------------------------------------------------ Cholesky

TEST(Cholesky, ReconstructsSpdMatrix) {
  Engine eng(8);
  const Matrix g = random_matrix(6, 6, eng);
  Matrix spd = g * g.transpose();
  for (std::size_t i = 0; i < 6; ++i) spd(i, i) += 1.0;
  const Matrix l = sap::linalg::cholesky(spd);
  EXPECT_TRUE((l * l.transpose()).approx_equal(spd, 1e-9));
  // L lower triangular.
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = i + 1; j < 6; ++j) EXPECT_DOUBLE_EQ(l(i, j), 0.0);
}

TEST(Cholesky, IndefiniteThrows) {
  Matrix m{{1, 0}, {0, -1}};
  EXPECT_THROW(sap::linalg::cholesky(m), sap::Error);
}

// ------------------------------------------------------------ Jacobi eigen

TEST(SymEigen, DiagonalMatrix) {
  const auto e = sap::linalg::sym_eigen(Matrix{{3, 0}, {0, 1}});
  EXPECT_NEAR(e.values[0], 3.0, 1e-12);
  EXPECT_NEAR(e.values[1], 1.0, 1e-12);
}

TEST(SymEigen, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  const auto e = sap::linalg::sym_eigen(Matrix{{2, 1}, {1, 2}});
  EXPECT_NEAR(e.values[0], 3.0, 1e-10);
  EXPECT_NEAR(e.values[1], 1.0, 1e-10);
}

class SymEigenProperty : public ::testing::TestWithParam<int> {};

TEST_P(SymEigenProperty, ReconstructionAndOrthonormality) {
  const int n = GetParam();
  Engine eng(300 + n);
  const Matrix g = random_matrix(n, n, eng);
  const Matrix a = 0.5 * (g + g.transpose());
  const auto e = sap::linalg::sym_eigen(a);

  // V diag(values) V^T == A
  Matrix d(n, n);
  for (int i = 0; i < n; ++i) d(i, i) = e.values[i];
  EXPECT_TRUE((e.vectors * d * e.vectors.transpose()).approx_equal(a, 1e-8));
  EXPECT_LT(sap::linalg::orthogonality_defect(e.vectors), 1e-9);
  // Sorted descending.
  for (int i = 1; i < n; ++i) EXPECT_GE(e.values[i - 1], e.values[i] - 1e-12);
  // Trace preserved.
  double trace = 0.0, sum = 0.0;
  for (int i = 0; i < n; ++i) {
    trace += a(i, i);
    sum += e.values[i];
  }
  EXPECT_NEAR(trace, sum, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SymEigenProperty, ::testing::Values(2, 3, 5, 8, 12, 20));

TEST(SymEigen, AsymmetricInputThrows) {
  EXPECT_THROW(sap::linalg::sym_eigen(Matrix{{1, 2}, {0, 1}}), sap::Error);
}

// ------------------------------------------------------------ SVD

class SvdProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SvdProperty, ReconstructionOrthogonalityOrdering) {
  const auto [m, n] = GetParam();
  Engine eng(400 + 31 * m + n);
  const Matrix a = random_matrix(m, n, eng);
  const auto f = sap::linalg::svd(a);

  const int k = std::min(m, n);
  ASSERT_EQ(static_cast<int>(f.s.size()), std::min(m, n));
  // Reconstruct A = U diag(s) V^T.
  Matrix d(f.u.cols(), f.v.cols());
  for (int i = 0; i < k; ++i) d(i, i) = f.s[i];
  EXPECT_TRUE((f.u * d * f.v.transpose()).approx_equal(a, 1e-9));
  // Singular values non-negative descending.
  for (int i = 0; i < k; ++i) EXPECT_GE(f.s[i], 0.0);
  for (int i = 1; i < k; ++i) EXPECT_GE(f.s[i - 1], f.s[i] - 1e-12);
  // Columns of U and V orthonormal.
  EXPECT_TRUE((f.u.transpose() * f.u).approx_equal(Matrix::identity(f.u.cols()), 1e-9));
  EXPECT_TRUE((f.v.transpose() * f.v).approx_equal(Matrix::identity(f.v.cols()), 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdProperty,
                         ::testing::Values(std::pair{2, 2}, std::pair{5, 5}, std::pair{8, 3},
                                           std::pair{3, 8}, std::pair{12, 12},
                                           std::pair{20, 6}));

TEST(Svd, SingularValuesOfOrthogonalAreOnes) {
  Engine eng(9);
  const Matrix q = sap::linalg::random_orthogonal(6, eng);
  const auto f = sap::linalg::svd(q);
  for (double s : f.s) EXPECT_NEAR(s, 1.0, 1e-10);
}

TEST(Svd, RankOneMatrix) {
  Matrix a{{1, 2}, {2, 4}, {3, 6}};
  const auto f = sap::linalg::svd(a);
  EXPECT_GT(f.s[0], 0.0);
  EXPECT_NEAR(f.s[1], 0.0, 1e-10);
  // Frobenius norm equals l2 norm of singular values.
  EXPECT_NEAR(f.s[0], a.norm_fro(), 1e-9);
}

TEST(Svd, RankDeficientUStillHasOrthonormalColumns) {
  // Null-space columns of U must be completed, not zeroed: downstream
  // Procrustes relies on U V^T being orthogonal even for degenerate input.
  Matrix a{{1, 2, 3}, {2, 4, 6}, {3, 6, 9}, {0, 0, 0}};  // rank 1
  const auto f = sap::linalg::svd(a);
  EXPECT_TRUE((f.u.transpose() * f.u).approx_equal(Matrix::identity(3), 1e-9));
  // Reconstruction still exact.
  Matrix d(3, 3);
  for (int i = 0; i < 3; ++i) d(i, i) = f.s[i];
  EXPECT_TRUE((f.u * d * f.v.transpose()).approx_equal(a, 1e-9));
}

TEST(Procrustes, RankDeficientInputStillYieldsOrthogonalRotation) {
  // Known-input attack with few (or duplicate) known records produces a
  // rank-deficient correspondence; the Procrustes estimate must remain a
  // valid orthogonal matrix rather than a rank-deficient partial isometry.
  Engine eng(18);
  const int d = 6;
  Matrix src(d, 3);  // 3 points in 6-D: rank <= 3
  for (auto& v : src.data()) v = eng.normal();
  const Matrix r_true = sap::linalg::random_orthogonal(d, eng);
  const Matrix dst = r_true * src;
  const Matrix r_hat = sap::linalg::procrustes_rotation(src, dst);
  EXPECT_LT(sap::linalg::orthogonality_defect(r_hat), 1e-8);
  // It must still map the known points correctly.
  EXPECT_TRUE((r_hat * src).approx_equal(dst, 1e-7));
}

// ------------------------------------------------------------ Random orthogonal

class RandomOrthogonalProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomOrthogonalProperty, OrthogonalAndDistancePreserving) {
  const int d = GetParam();
  Engine eng(500 + d);
  const Matrix r = sap::linalg::random_orthogonal(d, eng);
  EXPECT_LT(sap::linalg::orthogonality_defect(r), 1e-10);
  EXPECT_NEAR(std::abs(sap::linalg::determinant(r)), 1.0, 1e-9);

  // Distances between random points are preserved.
  const Matrix pts = random_matrix(d, 10, eng);
  const Matrix rot = r * pts;
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = i + 1; j < 10; ++j) {
      const double dij = sap::linalg::distance(pts.col(i), pts.col(j));
      const double rij = sap::linalg::distance(rot.col(i), rot.col(j));
      EXPECT_NEAR(dij, rij, 1e-10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, RandomOrthogonalProperty, ::testing::Values(1, 2, 3, 5, 9, 16));

TEST(RandomOrthogonal, RotationHasPositiveDeterminant) {
  Engine eng(10);
  for (int trial = 0; trial < 20; ++trial) {
    const Matrix r = sap::linalg::random_rotation(4, eng);
    EXPECT_NEAR(sap::linalg::determinant(r), 1.0, 1e-9);
  }
}

TEST(RandomOrthogonal, HaarColumnsUncorrelatedOnAverage) {
  // First column of a Haar matrix is uniform on the sphere: its mean is 0.
  Engine eng(11);
  const int d = 5, trials = 3000;
  Vector mean(d, 0.0);
  for (int t = 0; t < trials; ++t) {
    const Matrix r = sap::linalg::random_orthogonal(d, eng);
    for (int i = 0; i < d; ++i) mean[i] += r(i, 0);
  }
  for (int i = 0; i < d; ++i) EXPECT_NEAR(mean[i] / trials, 0.0, 0.05);
}

TEST(Givens, RotatesPlane) {
  const Matrix g = sap::linalg::givens(3, 0, 2, std::numbers::pi / 2);
  EXPECT_LT(sap::linalg::orthogonality_defect(g), 1e-12);
  const Vector x{1.0, 5.0, 0.0};
  const Vector y = g.matvec(x);
  EXPECT_NEAR(y[0], 0.0, 1e-12);
  EXPECT_NEAR(y[1], 5.0, 1e-12);
  EXPECT_NEAR(y[2], 1.0, 1e-12);
}

// ------------------------------------------------------------ Procrustes

TEST(Procrustes, RecoversExactRotation) {
  Engine eng(12);
  const int d = 6, m = 15;
  const Matrix r_true = sap::linalg::random_orthogonal(d, eng);
  const Matrix src = random_matrix(d, m, eng);
  const Matrix dst = r_true * src;
  const Matrix r_hat = sap::linalg::procrustes_rotation(src, dst);
  EXPECT_TRUE(r_hat.approx_equal(r_true, 1e-8));
}

TEST(Procrustes, RobustToSmallNoise) {
  Engine eng(13);
  const int d = 4, m = 40;
  const Matrix r_true = sap::linalg::random_orthogonal(d, eng);
  const Matrix src = random_matrix(d, m, eng);
  Matrix dst = r_true * src;
  for (auto& v : dst.data()) v += eng.normal(0.0, 0.01);
  const Matrix r_hat = sap::linalg::procrustes_rotation(src, dst);
  EXPECT_LT(sap::linalg::orthogonality_defect(r_hat), 1e-9);
  EXPECT_LT((r_hat - r_true).max_abs(), 0.05);
}

// ------------------------------------------------------------ Stats

TEST(Stats, RowAndColMeans) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Vector rm = sap::linalg::row_means(m);
  EXPECT_NEAR(rm[0], 2.0, 1e-12);
  EXPECT_NEAR(rm[1], 5.0, 1e-12);
  const Vector cm = sap::linalg::col_means(m);
  EXPECT_NEAR(cm[0], 2.5, 1e-12);
  EXPECT_NEAR(cm[2], 4.5, 1e-12);
}

TEST(Stats, StddevKnownValues) {
  Matrix m{{1, 3}, {2, 2}};
  const Vector sd = sap::linalg::row_stddev(m);
  EXPECT_NEAR(sd[0], std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(sd[1], 0.0, 1e-12);
}

TEST(Stats, CovarianceOfIndependentRows) {
  Engine eng(14);
  const int n = 20000;
  Matrix x(2, n);
  for (int i = 0; i < n; ++i) {
    x(0, i) = eng.normal(0.0, 1.0);
    x(1, i) = eng.normal(0.0, 2.0);
  }
  const Matrix c = sap::linalg::covariance_cols(x);
  EXPECT_NEAR(c(0, 0), 1.0, 0.05);
  EXPECT_NEAR(c(1, 1), 4.0, 0.15);
  EXPECT_NEAR(c(0, 1), 0.0, 0.05);
}

TEST(Stats, CovarianceRotationEquivariance) {
  // cov(RX) = R cov(X) R^T — the identity that makes rotation perturbation
  // attackable by spectral methods and is load-bearing for the ICA attack.
  Engine eng(15);
  const Matrix x = random_matrix(3, 500, eng);
  const Matrix r = sap::linalg::random_orthogonal(3, eng);
  const Matrix lhs = sap::linalg::covariance_cols(r * x);
  const Matrix rhs = r * sap::linalg::covariance_cols(x) * r.transpose();
  EXPECT_TRUE(lhs.approx_equal(rhs, 1e-8));
}

TEST(Stats, PearsonPerfectAndInverse) {
  const Vector x{1, 2, 3, 4};
  const Vector y{2, 4, 6, 8};
  const Vector z{8, 6, 4, 2};
  EXPECT_NEAR(sap::linalg::pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(sap::linalg::pearson(x, z), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSequenceIsZero) {
  const Vector x{1, 1, 1, 1};
  const Vector y{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(sap::linalg::pearson(x, y), 0.0);
}

TEST(Stats, KurtosisGaussianNearZeroUniformNegative) {
  Engine eng(16);
  Vector gauss(50000), unif(50000);
  for (auto& v : gauss) v = eng.normal();
  for (auto& v : unif) v = eng.uniform(-1.0, 1.0);
  EXPECT_NEAR(sap::linalg::excess_kurtosis(gauss), 0.0, 0.1);
  EXPECT_NEAR(sap::linalg::excess_kurtosis(unif), -1.2, 0.1);
}

// ------------------------------------------------------------ Blocked GEMM

// The blocked kernel's exactness contract: bit-identical to the naive ikj
// reference on every shape, because each output element accumulates as one
// left-to-right chain over ascending k in both.
class BlockedGemmExactness
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(BlockedGemmExactness, BitIdenticalToNaiveReference) {
  const auto [m, k, n] = GetParam();
  Engine eng(m * 1000 + k * 100 + n);
  const Matrix a = random_matrix(m, k, eng);
  const Matrix b = random_matrix(k, n, eng);
  const Matrix ref = sap::linalg::matmul_naive(a, b);
  const Matrix blocked = a * b;  // operator* routes through gemm()
  EXPECT_TRUE(blocked == ref);   // exact, not approx
  Matrix c(m, n, 123.0);         // beta = 0 must overwrite stale contents
  sap::linalg::gemm(1.0, a, b, 0.0, c);
  EXPECT_TRUE(c == ref);
}

INSTANTIATE_TEST_SUITE_P(
    RaggedShapes, BlockedGemmExactness,
    ::testing::Values(std::make_tuple(1, 1, 1),    // degenerate
                      std::make_tuple(1, 7, 1),    // 1 x k x 1
                      std::make_tuple(1, 9, 6),    // single row
                      std::make_tuple(9, 5, 1),    // single column
                      std::make_tuple(3, 3, 3),    // below one row tile
                      std::make_tuple(5, 7, 3),    // odd everything
                      std::make_tuple(7, 300, 11), // k crosses the panel size
                      std::make_tuple(34, 34, 160),// the d=34 perturb shape
                      std::make_tuple(64, 64, 64),
                      std::make_tuple(33, 17, 41)));

TEST(BlockedGemm, AlphaBetaAccumulate) {
  Engine eng(21);
  const Matrix a = random_matrix(6, 9, eng);
  const Matrix b = random_matrix(9, 13, eng);
  Matrix c = random_matrix(6, 13, eng);
  // Reference with the same chain structure: scale C by beta, then
  // accumulate (alpha * a_ik) * b_kj over ascending k.
  Matrix ref = c;
  for (auto& v : ref.data()) v *= 0.5;
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t k = 0; k < 9; ++k) {
      const double av = 2.25 * a(i, k);
      for (std::size_t j = 0; j < 13; ++j) ref(i, j) += av * b(k, j);
    }
  sap::linalg::gemm(2.25, a, b, 0.5, c);
  EXPECT_TRUE(c == ref);
}

TEST(BlockedGemm, RowBiasEpilogueMatchesSeparatePass) {
  Engine eng(22);
  const Matrix a = random_matrix(7, 31, eng);
  const Matrix b = random_matrix(31, 19, eng);
  Vector t(7);
  for (auto& v : t) v = eng.normal();
  Matrix ref = sap::linalg::matmul_naive(a, b);
  for (std::size_t i = 0; i < 7; ++i)
    for (auto& v : ref.row(i)) v += t[i];
  Matrix c(7, 19);
  sap::linalg::gemm(1.0, a, b, 0.0, c, t);
  EXPECT_TRUE(c == ref);
}

TEST(BlockedGemm, ShapeMismatchThrows) {
  const Matrix a(3, 4), b(5, 2);
  Matrix c(3, 2);
  EXPECT_THROW(sap::linalg::gemm(1.0, a, b, 0.0, c), sap::Error);
  const Matrix b2(4, 2);
  Matrix bad_c(2, 2);
  EXPECT_THROW(sap::linalg::gemm(1.0, a, b2, 0.0, bad_c), sap::Error);
  Matrix good_c(3, 2);
  Vector bad_bias(2);
  EXPECT_THROW(sap::linalg::gemm(1.0, a, b2, 0.0, good_c, bad_bias), sap::Error);
}

TEST(MatMulAbt, BitIdenticalToRowDots) {
  Engine eng(23);
  const Matrix a = random_matrix(9, 47, eng);
  const Matrix b = random_matrix(6, 47, eng);
  const Matrix c = sap::linalg::matmul_abt(a, b);
  ASSERT_EQ(c.rows(), 9u);
  ASSERT_EQ(c.cols(), 6u);
  for (std::size_t i = 0; i < 9; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_EQ(c(i, j), sap::linalg::dot(a.row(i), b.row(j)));
}

TEST(GatherCols, MatchesPerColumnCopy) {
  Engine eng(24);
  const Matrix x = random_matrix(5, 12, eng);
  const std::vector<std::size_t> idx{7, 0, 7, 11, 3};
  const Matrix out = sap::linalg::gather_cols(x, idx);
  ASSERT_EQ(out.rows(), 5u);
  ASSERT_EQ(out.cols(), idx.size());
  for (std::size_t j = 0; j < idx.size(); ++j) {
    const Vector expected = x.col(idx[j]);
    for (std::size_t r = 0; r < 5; ++r) EXPECT_EQ(out(r, j), expected[r]);
  }
  const std::vector<std::size_t> bad{12};
  EXPECT_THROW((void)sap::linalg::gather_cols(x, bad), sap::Error);
}

}  // namespace
