// Tests for sap::opt: randomized perturbation optimization and the
// optimality-rate estimator (paper §2, Figures 2-3 machinery).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "data/normalize.hpp"
#include "data/synthetic.hpp"
#include "golden.hpp"
#include "linalg/orthogonal.hpp"
#include "optimize/optimizer.hpp"
#include "rng/rng.hpp"

namespace {

using sap::linalg::Matrix;
using sap::rng::Engine;

Matrix normalized_paper_layout(const std::string& dataset, std::uint64_t seed) {
  const auto ds = sap::data::make_uci(dataset, seed);
  sap::data::MinMaxNormalizer norm;
  norm.fit(ds.features());
  return norm.transform(ds.features()).transpose();  // d x N
}

sap::opt::OptimizerOptions cheap_options() {
  sap::opt::OptimizerOptions o;
  o.candidates = 6;
  o.refine_steps = 3;
  o.max_eval_records = 100;
  o.attacks.naive = true;
  o.attacks.ica = false;  // keep unit tests fast; ICA covered in privacy_test
  o.attacks.known_inputs = 4;
  return o;
}

TEST(Optimizer, BestIsAtLeastEveryCandidate) {
  const Matrix x = normalized_paper_layout("Iris", 1);
  Engine eng(1);
  const auto res = sap::opt::optimize_perturbation(x, cheap_options(), eng);
  ASSERT_EQ(res.candidate_rhos.size(), 6u);
  for (double rho : res.candidate_rhos) EXPECT_GE(res.best_rho, rho - 1e-12);
  EXPECT_GE(res.evaluations, res.candidate_rhos.size());
}

TEST(Optimizer, RefinementNeverDegradesBest) {
  const Matrix x = normalized_paper_layout("Iris", 2);
  auto opts = cheap_options();
  Engine eng_a(7), eng_b(7);
  opts.refine_steps = 0;
  const auto base = sap::opt::optimize_perturbation(x, opts, eng_a);
  opts.refine_steps = 6;
  const auto refined = sap::opt::optimize_perturbation(x, opts, eng_b);
  // Same seed → same candidate phase; refinement can only add evaluations
  // and keep or improve the winner.
  EXPECT_GE(refined.best_rho, base.best_rho - 1e-12);
}

TEST(Optimizer, OptimizedBeatsAverageRandomPerturbation) {
  // The core Figure-2 claim: the optimized rho is (on average) above the
  // mean of random draws.
  const Matrix x = normalized_paper_layout("Diabetes", 3);
  Engine eng(11);
  const auto res = sap::opt::optimize_perturbation(x, cheap_options(), eng);
  double mean_random = 0.0;
  for (double rho : res.candidate_rhos) mean_random += rho;
  mean_random /= static_cast<double>(res.candidate_rhos.size());
  EXPECT_GT(res.best_rho, mean_random);
}

TEST(Optimizer, ReturnedPerturbationScoresNearReportedRho) {
  // Re-evaluating the winner must give a similar rho (fresh noise and
  // subsample make it stochastic, hence the loose tolerance).
  const Matrix x = normalized_paper_layout("Iris", 4);
  auto opts = cheap_options();
  Engine eng(13);
  const auto res = sap::opt::optimize_perturbation(x, opts, eng);
  const double re = sap::opt::evaluate_perturbation(x, res.best, opts.attacks,
                                                    opts.max_eval_records, eng);
  EXPECT_NEAR(re, res.best_rho, 0.45);
}

TEST(Optimizer, DeterministicGivenSeed) {
  const Matrix x = normalized_paper_layout("Wine", 5);
  Engine eng_a(99), eng_b(99);
  const auto a = sap::opt::optimize_perturbation(x, cheap_options(), eng_a);
  const auto b = sap::opt::optimize_perturbation(x, cheap_options(), eng_b);
  EXPECT_DOUBLE_EQ(a.best_rho, b.best_rho);
  EXPECT_TRUE(a.best.rotation().approx_equal(b.best.rotation(), 0.0));
}

TEST(Optimizer, MatchesPinnedGolden) {
  // The deterministic-baseline pins (tests/golden.hpp): a silent change to
  // the seed-derivation scheme re-keys every deployment and must fail here.
  const Matrix x = normalized_paper_layout("Wine", 5);
  Engine eng(99);
  const auto res = sap::opt::optimize_perturbation(x, cheap_options(), eng);
  EXPECT_NEAR(res.best_rho, sap::testing::kGoldenWineBestRho,
              sap::testing::kGoldenTolerance);

  const Matrix iris = normalized_paper_layout("Iris", 7);
  Engine eng2(17);
  const auto res2 = sap::opt::optimize_perturbation(iris, cheap_options(), eng2);
  EXPECT_NEAR(res2.best_rho, sap::testing::kGoldenIrisBestRho,
              sap::testing::kGoldenTolerance);
}

TEST(Optimizer, BitIdenticalAcrossThreadCounts) {
  // The determinism contract (optimizer.hpp): candidate engines are derived
  // serially before the parallel region and results land in index-addressed
  // slots, so 0, 2 and 8 worker threads must agree bit for bit.
  const Matrix x = normalized_paper_layout("Diabetes", 12);
  auto opts = cheap_options();
  sap::opt::OptimizationResult reference;
  for (const std::size_t threads : {0, 2, 8}) {
    opts.threads = threads;
    Engine eng(777);
    const auto res = sap::opt::optimize_perturbation(x, opts, eng);
    if (threads == 0) {
      reference = res;
      continue;
    }
    EXPECT_EQ(res.best_rho, reference.best_rho) << threads << " threads";
    EXPECT_TRUE(res.best.rotation() == reference.best.rotation()) << threads;
    EXPECT_TRUE(res.best.translation() == reference.best.translation()) << threads;
    ASSERT_EQ(res.candidate_rhos.size(), reference.candidate_rhos.size());
    for (std::size_t c = 0; c < res.candidate_rhos.size(); ++c)
      EXPECT_EQ(res.candidate_rhos[c], reference.candidate_rhos[c]) << "candidate " << c;
    EXPECT_EQ(res.evaluations, reference.evaluations);
  }
}

TEST(Optimizer, CallerOwnedPoolMatchesPrivatePool) {
  const Matrix x = normalized_paper_layout("Iris", 13);
  auto opts = cheap_options();
  opts.threads = 3;
  Engine eng_a(31), eng_b(31);
  const auto a = sap::opt::optimize_perturbation(x, opts, eng_a);
  sap::ThreadPool pool(2);  // deliberately different size: results invariant
  const auto b = sap::opt::optimize_perturbation(x, opts, eng_b, pool);
  EXPECT_EQ(a.best_rho, b.best_rho);
  EXPECT_TRUE(a.best.rotation() == b.best.rotation());
}

TEST(Optimizer, RefinementProbesCountTwoPerStep) {
  const Matrix x = normalized_paper_layout("Iris", 14);
  auto opts = cheap_options();
  opts.candidates = 4;
  opts.refine_steps = 5;
  Engine eng(3);
  const auto res = sap::opt::optimize_perturbation(x, opts, eng);
  // Each refinement step scores the +theta and -theta probes.
  EXPECT_EQ(res.evaluations, 4u + 2u * 5u);
}

TEST(Optimizer, TinyDatasetRejected) {
  Matrix x(3, 4);
  Engine eng(1);
  EXPECT_THROW(sap::opt::optimize_perturbation(x, cheap_options(), eng), sap::Error);
}

TEST(Optimizer, ZeroCandidatesRejected) {
  const Matrix x = normalized_paper_layout("Iris", 6);
  auto opts = cheap_options();
  opts.candidates = 0;
  Engine eng(1);
  EXPECT_THROW(sap::opt::optimize_perturbation(x, opts, eng), sap::Error);
}

TEST(OptimalityRate, RateInUnitIntervalAndBoundIsMax) {
  const Matrix x = normalized_paper_layout("Iris", 7);
  Engine eng(17);
  const auto est = sap::opt::estimate_optimality_rate(x, cheap_options(), 8, eng);
  EXPECT_GT(est.rate, 0.0);
  EXPECT_LE(est.rate, 1.0 + 1e-12);
  EXPECT_EQ(est.run_rhos.size(), 8u);
  const double max_run = *std::max_element(est.run_rhos.begin(), est.run_rhos.end());
  EXPECT_DOUBLE_EQ(est.bound, max_run);
  EXPECT_LE(est.mean_rho, est.bound + 1e-12);
}

TEST(OptimalityRate, TypicalRateIsHighForOptimizedRuns) {
  // Figure 3 reports rates in the 0.8-1.0 band; with refinement the mean
  // optimized run should land close to the empirical bound.
  const Matrix x = normalized_paper_layout("Diabetes", 8);
  Engine eng(19);
  const auto est = sap::opt::estimate_optimality_rate(x, cheap_options(), 10, eng);
  EXPECT_GT(est.rate, 0.7);
}

TEST(OptimalityRate, NeedsTwoRuns) {
  const Matrix x = normalized_paper_layout("Iris", 9);
  Engine eng(1);
  EXPECT_THROW(sap::opt::estimate_optimality_rate(x, cheap_options(), 1, eng), sap::Error);
}

TEST(EvaluatePerturbation, DimensionMismatchThrows) {
  const Matrix x = normalized_paper_layout("Iris", 10);
  Engine eng(2);
  const auto g = sap::perturb::GeometricPerturbation::random(x.rows() + 1, 0.1, eng);
  EXPECT_THROW(sap::opt::evaluate_perturbation(x, g, cheap_options().attacks, 100, eng),
               sap::Error);
}

// Sweep every synthetic dataset of the paper's suite: the optimizer must
// produce a valid perturbation with positive, bounded rho on all of them
// (shapes range 150x4 to 2000x9, mixed Gaussian/binary columns).
class OptimizerSuiteSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(OptimizerSuiteSweep, ProducesValidPerturbationEverywhere) {
  const Matrix x = normalized_paper_layout(GetParam(), 99);
  auto opts = cheap_options();
  opts.candidates = 4;
  opts.refine_steps = 2;
  Engine eng(2718);
  const auto res = sap::opt::optimize_perturbation(x, opts, eng);
  EXPECT_GT(res.best_rho, 0.0) << GetParam();
  EXPECT_LT(res.best_rho, 2.0) << GetParam();  // metric tops out near sqrt(2)+noise
  EXPECT_EQ(res.best.dims(), x.rows()) << GetParam();
  EXPECT_LT(sap::linalg::orthogonality_defect(res.best.rotation()), 1e-8) << GetParam();
  for (double t : res.best.translation()) {
    EXPECT_GE(t, -1.0) << GetParam();
    EXPECT_LT(t, 1.0) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllTwelveDatasets, OptimizerSuiteSweep,
                         ::testing::Values("Breast_w", "Credit_a", "Credit_g", "Diabetes",
                                           "Ecoli", "Hepatitis", "Heart", "Ionosphere",
                                           "Iris", "Shuttle", "Votes", "Wine"));

TEST(EvaluatePerturbation, MoreNoiseRaisesKnownInputPrivacy) {
  const Matrix x = normalized_paper_layout("Iris", 11);
  sap::privacy::AttackSuiteOptions attacks{.naive = false, .ica = false, .known_inputs = 6};
  Engine eng(23);
  const auto r = sap::linalg::random_orthogonal(x.rows(), eng);
  sap::linalg::Vector t(x.rows(), 0.1);

  const sap::perturb::GeometricPerturbation quiet(r, t, 0.02);
  const sap::perturb::GeometricPerturbation loud(r, t, 0.4);
  double rho_quiet = 0.0, rho_loud = 0.0;
  // Average over repeats: subsampling + fresh noise make single evals noisy.
  for (int rep = 0; rep < 5; ++rep) {
    rho_quiet += sap::opt::evaluate_perturbation(x, quiet, attacks, 120, eng);
    rho_loud += sap::opt::evaluate_perturbation(x, loud, attacks, 120, eng);
  }
  EXPECT_GT(rho_loud, rho_quiet);
}

}  // namespace
