// sap::obs tests — the observability layer's own contracts (DESIGN.md §12):
//
//   * concurrency: sharded counters, histograms, and registry registration
//     hammered from many threads count exactly (and are TSAN-clean);
//   * exact merge: a merged histogram snapshot equals the histogram of the
//     union of the samples BUCKET FOR BUCKET — the property the router's
//     cluster aggregation rests on;
//   * codec: kStatsResponse round-trips a full snapshot + trace records and
//     rejects malformed wires;
//   * purity: metrics on vs off cannot move a single bit of the optimizer
//     baseline (pinned against tests/golden.hpp);
//   * live doors: a real miner answers the stats door with non-zero
//     counters, a stats request never counts itself as served traffic, and
//     a client-minted trace id propagates through a RouterDaemon to every
//     sharded miner that handled the fan-out.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "data/normalize.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "golden.hpp"
#include "net/cluster.hpp"
#include "net/remote.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "optimize/optimizer.hpp"
#include "protocol/message.hpp"
#include "protocol/party_logic.hpp"
#include "rng/rng.hpp"

namespace {

using sap::data::Dataset;
using sap::rng::Engine;
namespace net = sap::net;
namespace obs = sap::obs;
namespace proto = sap::proto;

/// RAII guard: force the metrics switch for a scope, restore on exit (the
/// switch is process-global and tests share one binary).
struct EnabledGuard {
  bool saved;
  explicit EnabledGuard(bool on) : saved(obs::enabled()) { obs::set_enabled(on); }
  ~EnabledGuard() { obs::set_enabled(saved); }
};

std::uint64_t counter_value(const obs::Snapshot& s, const std::string& name) {
  for (const auto& [n, v] : s.counters)
    if (n == name) return v;
  return 0;
}

bool has_gauge(const obs::Snapshot& s, const std::string& name) {
  for (const auto& [n, v] : s.gauges)
    if (n == name) return true;
  return false;
}

const obs::HistogramSnapshot* find_hist(const obs::Snapshot& s, const std::string& name) {
  for (const auto& [n, h] : s.histograms)
    if (n == name) return &h;
  return nullptr;
}

// ---- concurrency ---------------------------------------------------------

TEST(ObsRegistry, ConcurrentRegistrationAndRecordingCountsExactly) {
  obs::Registry registry;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 20'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Every thread re-looks-up the shared names (registration races) and
      // also owns a private counter (map growth races against lookups).
      obs::Counter& shared = registry.counter("hammer.shared");
      obs::Histogram& hist = registry.histogram("hammer.ms");
      obs::Counter& mine = registry.counter("hammer.t" + std::to_string(t));
      for (std::size_t i = 0; i < kIters; ++i) {
        shared.increment();
        mine.add(2);
        hist.record(static_cast<double>(i % 97));
        if (i % 1024 == 0) registry.set_gauge("hammer.gauge", static_cast<double>(i));
      }
    });
  }
  for (auto& t : threads) t.join();

  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(counter_value(snap, "hammer.shared"), kThreads * kIters);
  for (std::size_t t = 0; t < kThreads; ++t)
    EXPECT_EQ(counter_value(snap, "hammer.t" + std::to_string(t)), 2 * kIters);
  const auto* hist = find_hist(snap, "hammer.ms");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, kThreads * kIters);
  EXPECT_TRUE(has_gauge(snap, "hammer.gauge"));
}

TEST(ObsCounter, DisabledSwitchFreezesValues) {
  obs::Counter c;
  c.add(5);
  {
    EnabledGuard off(false);
    c.add(100);
    c.increment();
  }
  EXPECT_EQ(c.value(), 5u);
  c.increment();
  EXPECT_EQ(c.value(), 6u);
}

// ---- exact merge ---------------------------------------------------------

TEST(ObsHistogram, MergeEqualsUnionBucketForBucket) {
  // Two disjoint-ish sample sets spanning sub-ms to minutes, including
  // exact bucket boundaries and the underflow/overflow edges.
  std::vector<double> a, b;
  Engine eng(20260808);
  for (std::size_t i = 0; i < 4000; ++i) a.push_back(eng.uniform(0.0001, 40.0));
  for (std::size_t i = 0; i < 3000; ++i) b.push_back(eng.uniform(5.0, 90'000.0));
  a.push_back(0.0);            // underflow bucket
  b.push_back(6.0e6);          // overflow bucket
  a.push_back(1.0);            // octave boundary
  b.push_back(1024.0);

  obs::Histogram ha, hb, hu;
  for (const double v : a) {
    ha.record(v);
    hu.record(v);
  }
  for (const double v : b) {
    hb.record(v);
    hu.record(v);
  }

  obs::HistogramSnapshot merged = ha.snapshot();
  merged.merge(hb.snapshot());
  const obs::HistogramSnapshot whole = hu.snapshot();

  EXPECT_EQ(merged.count, whole.count);
  EXPECT_EQ(merged.max, whole.max);  // max of maxes is exact
  ASSERT_EQ(merged.buckets.size(), whole.buckets.size());
  for (std::size_t i = 0; i < whole.buckets.size(); ++i) {
    EXPECT_EQ(merged.buckets[i].first, whole.buckets[i].first) << "bucket index " << i;
    EXPECT_EQ(merged.buckets[i].second, whole.buckets[i].second)
        << "bucket count at index " << merged.buckets[i].first;
  }
  // Sums accumulate in different orders; equality is up to rounding only.
  EXPECT_NEAR(merged.sum, whole.sum, 1e-6 * std::abs(whole.sum));
  // Identical buckets => identical quantiles, bit for bit.
  for (const double q : {0.5, 0.95, 0.99, 1.0})
    EXPECT_EQ(merged.quantile(q), whole.quantile(q));
}

TEST(ObsHistogram, QuantilesWithinBucketResolution) {
  obs::Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 1000u);
  // Log-linear buckets bound relative error by ~1/kSubBuckets.
  EXPECT_NEAR(snap.quantile(0.50), 500.0, 500.0 * 0.13);
  EXPECT_NEAR(snap.quantile(0.95), 950.0, 950.0 * 0.13);
  EXPECT_NEAR(snap.quantile(0.99), 990.0, 990.0 * 0.13);
  EXPECT_EQ(snap.quantile(1.0), 1000.0);  // exact max
  EXPECT_NEAR(snap.mean(), 500.5, 1e-9);
}

TEST(ObsSnapshot, MergeAddsCountersAndExpositionIsVersioned) {
  obs::Snapshot a, b;
  a.set_counter("serve.requests", 3);
  a.set_gauge("pool.records", 100.0);
  b.set_counter("serve.requests", 4);
  b.set_gauge("pool.records", 50.0);
  a.normalize();
  b.normalize();
  a.merge(b);
  a.normalize();
  EXPECT_EQ(counter_value(a, "serve.requests"), 7u);

  const std::string text = a.to_text();
  EXPECT_EQ(text.rfind("sap-stats v1", 0), 0u) << text;
  EXPECT_NE(text.find("serve.requests"), std::string::npos);
  const std::string json = a.to_json();
  EXPECT_NE(json.find("\"version\""), std::string::npos);
  EXPECT_NE(json.find("serve.requests"), std::string::npos);
}

// ---- codec ---------------------------------------------------------------

TEST(ObsCodec, StatsResponseRoundTripsExactly) {
  obs::Registry registry;
  registry.counter("serve.requests").add(41);
  registry.set_gauge("reactor.live", 7.5);
  obs::Histogram& h = registry.histogram("engine.serve_ms");
  for (int i = 0; i < 500; ++i) h.record(0.05 * static_cast<double>(i));
  obs::Snapshot snap = registry.snapshot();
  snap.normalize();

  std::vector<obs::TraceRecord> traces(2);
  traces[0].id = 0xD00D000000000001ull;
  traces[0].op = "kMiningRequest";
  traces[0].stage_ms = {0.1, 0.2, 3.5, 0.0, 0.05};
  traces[1].id = 0x5A90000000000007ull;
  traces[1].op = "nb-train-accuracy";
  traces[1].stage_ms = {0.0, 0.0, 1.25, 0.75, 0.01};

  const std::vector<double> wire = proto::encode_stats_response(snap, traces);
  const proto::DecodedStats decoded = proto::decode_stats_response(wire);

  ASSERT_EQ(decoded.snapshot.counters.size(), snap.counters.size());
  EXPECT_EQ(counter_value(decoded.snapshot, "serve.requests"), 41u);
  ASSERT_EQ(decoded.snapshot.gauges.size(), 1u);
  EXPECT_EQ(decoded.snapshot.gauges[0].first, "reactor.live");
  EXPECT_EQ(decoded.snapshot.gauges[0].second, 7.5);

  const auto* got = find_hist(decoded.snapshot, "engine.serve_ms");
  const auto* want = find_hist(snap, "engine.serve_ms");
  ASSERT_NE(got, nullptr);
  ASSERT_NE(want, nullptr);
  EXPECT_EQ(got->count, want->count);
  EXPECT_EQ(got->sum, want->sum);  // doubles ride the wire verbatim
  EXPECT_EQ(got->max, want->max);
  EXPECT_EQ(got->buckets, want->buckets);

  ASSERT_EQ(decoded.traces.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(decoded.traces[i].id, traces[i].id);
    EXPECT_EQ(decoded.traces[i].op, traces[i].op);
    EXPECT_EQ(decoded.traces[i].stage_ms, traces[i].stage_ms);
  }
}

TEST(ObsCodec, RejectsMalformedStatsWires) {
  obs::Snapshot snap;
  snap.set_counter("a", 1);
  snap.normalize();
  const std::vector<double> wire = proto::encode_stats_response(snap, {});

  EXPECT_THROW(proto::decode_stats_response({}), sap::Error);

  std::vector<double> bad_version = wire;
  bad_version[0] = 2.0;
  EXPECT_THROW(proto::decode_stats_response(bad_version), sap::Error);

  std::vector<double> truncated(wire.begin(), wire.end() - 1);
  EXPECT_THROW(proto::decode_stats_response(truncated), sap::Error);

  std::vector<double> trailing = wire;
  trailing.push_back(0.0);
  EXPECT_THROW(proto::decode_stats_response(trailing), sap::Error);

  EXPECT_THROW(proto::decode_stats_request(std::vector<double>{2.0}), sap::Error);
}

// ---- trace primitives ----------------------------------------------------

TEST(ObsTrace, RingBoundsMemoryAndKeepsNewestOldestFirst) {
  obs::TraceRing ring(4);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    obs::TraceRecord rec;
    rec.id = i;
    ring.push(std::move(rec));
  }
  EXPECT_EQ(ring.total(), 6u);
  const auto recent = ring.recent();
  ASSERT_EQ(recent.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(recent[i].id, i + 3);  // 3,4,5,6
  const auto newest = ring.recent(2);
  ASSERT_EQ(newest.size(), 2u);
  EXPECT_EQ(newest[0].id, 5u);
  EXPECT_EQ(newest[1].id, 6u);

  {
    EnabledGuard off(false);
    obs::TraceRecord rec;
    rec.id = 99;
    ring.push(std::move(rec));
  }
  EXPECT_EQ(ring.total(), 6u) << "disabled pushes must be dropped";
}

TEST(ObsTrace, MinterIsSaltedAndMonotone) {
  obs::TraceMinter a(0x5A9), b(0x5A9 ^ 0xD00D);
  const std::uint64_t a1 = a.mint(), a2 = a.mint(), b1 = b.mint();
  EXPECT_NE(a1, 0u);
  EXPECT_EQ(a2, a1 + 1);
  EXPECT_EQ(a1 >> 48, 0x5A9u);
  EXPECT_EQ(b1 >> 48, (0x5A9u ^ 0xD00Du));
  EXPECT_NE(a1, b1);
}

// ---- purity: metrics on/off is bit-identical -----------------------------

TEST(ObsPurity, OptimizerBaselineUnmovedByMetricsSwitch) {
  const auto ds = sap::data::make_uci("Wine", 5);
  sap::data::MinMaxNormalizer norm;
  norm.fit(ds.features());
  const auto x = norm.transform(ds.features()).transpose();  // d x N

  sap::opt::OptimizerOptions opts;
  opts.candidates = 6;
  opts.refine_steps = 3;
  opts.max_eval_records = 100;
  opts.attacks.naive = true;
  opts.attacks.ica = false;
  opts.attacks.known_inputs = 4;

  double rho_on = 0.0, rho_off = 0.0;
  {
    EnabledGuard on(true);
    Engine eng(99);
    rho_on = sap::opt::optimize_perturbation(x, opts, eng).best_rho;
  }
  {
    EnabledGuard off(false);
    Engine eng(99);
    rho_off = sap::opt::optimize_perturbation(x, opts, eng).best_rho;
  }
  // Bit-identical across the switch, and still on the pinned baseline.
  EXPECT_DOUBLE_EQ(rho_on, rho_off);
  EXPECT_NEAR(rho_on, sap::testing::kGoldenWineBestRho, sap::testing::kGoldenTolerance);
}

// ---- live doors ----------------------------------------------------------

Dataset normalized_pool(const std::string& name, std::uint64_t seed) {
  const Dataset raw = sap::data::make_uci(name, seed);
  sap::data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  return {raw.name(), norm.transform(raw.features()), raw.labels()};
}

/// One in-process cluster member (the cluster_test fixture): a MinerDaemon
/// plus its k exchange parties; party 0 holds the daemon open until stop().
struct Member {
  std::unique_ptr<net::MinerDaemon> daemon;
  std::future<net::MinerDaemon::Summary> done;
  std::vector<std::thread> parties;
  std::promise<void> release;

  void start(const std::vector<Dataset>& shards, const proto::SapOptions& sap_opts,
             std::uint64_t seed, net::MinerDaemonOptions opts) {
    const std::size_t k = shards.size();
    opts.parties = k;
    opts.seed = seed;
    opts.reactor_loops = 2;
    opts.reactor_compute_threads = 2;
    daemon = std::make_unique<net::MinerDaemon>(opts);
    done = std::async(std::launch::async, [this] { return daemon->run(); });
    std::promise<void> exchanged;
    std::shared_future<void> released(release.get_future());
    for (std::size_t i = 0; i < k; ++i) {
      parties.emplace_back([this, &shards, &sap_opts, k, i, released, &exchanged] {
        net::PartyClientOptions popts;
        popts.connect = daemon->local_addr();
        popts.index = i;
        popts.parties = k;
        popts.sap = sap_opts;
        net::PartyClient party(shards[i], popts);
        (void)party.run_exchange();
        if (i == 0) {
          exchanged.set_value();
          released.wait();
        }
        party.finish();
      });
    }
    exchanged.get_future().wait();
    // The exchange signal fires when party 0's client side is done; the
    // daemon installs the pool and flips to serving shortly after. Direct
    // clients below have no router failover, so wait for the flip.
    while (!daemon->serving()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  net::MinerDaemon::Summary stop() {
    release.set_value();
    released = true;
    for (auto& t : parties) t.join();
    parties.clear();
    return done.get();
  }

  /// Unwind safety: a throwing test body must not destroy joinable party
  /// threads (std::terminate) — release party 0 and join everything so the
  /// REAL exception reaches gtest.
  ~Member() {
    if (!parties.empty()) {
      if (!released) release.set_value();
      for (auto& t : parties) t.join();
    }
  }

  bool released = false;
};

struct ClusterFixture {
  Dataset pool;
  std::vector<Dataset> shards;
  proto::SapOptions sap_opts;
  std::uint64_t seed;
  std::size_t k;

  explicit ClusterFixture(std::uint64_t seed_in, std::size_t k_in = 3)
      : seed(seed_in), k(k_in) {
    pool = normalized_pool("Iris", seed);
    Engine shard_eng(seed ^ 0xBEEF);
    sap::data::PartitionOptions popts;
    shards = sap::data::partition(pool.slice(0, 100), k, popts, shard_eng);
    sap_opts = proto::SapOptions::fast();
    sap_opts.seed = seed;
    sap_opts.compute_satisfaction = false;
  }
};

TEST(StatsDoor, MinerAnswersWithLiveCountersAndNeverCountsItself) {
  ClusterFixture cluster(7201);
  Member m;
  net::MinerDaemonOptions dopts;
  m.start(cluster.shards, cluster.sap_opts, cluster.seed, dopts);

  net::ServeClient client(m.daemon->reactor_addr(), cluster.seed, cluster.k);
  (void)client.mine_named("record-count");
  (void)client.mine_named("nb-train-accuracy", {{"eval-records", 48.0}});
  const proto::DecodedStats first = client.stats();
  const std::uint64_t served = counter_value(first.snapshot, "serve.requests");
  EXPECT_GE(served, 2u);
  const auto* serve_ms = find_hist(first.snapshot, "engine.serve_ms");
  ASSERT_NE(serve_ms, nullptr);
  EXPECT_GE(serve_ms->count, 2u);
  EXPECT_GE(counter_value(first.snapshot, "reactor.requests"), 2u);
  EXPECT_TRUE(has_gauge(first.snapshot, "pool.records"));
  EXPECT_TRUE(has_gauge(first.snapshot, "pool.epoch"));
  ASSERT_FALSE(first.traces.empty());

  // A stats request is pure measurement: it must not move the serving
  // counters it reports, and it records no trace of itself.
  const proto::DecodedStats second = client.stats();
  EXPECT_EQ(counter_value(second.snapshot, "serve.requests"), served);
  EXPECT_EQ(second.traces.size(), first.traces.size());

  client.bye();
  m.stop();
}

TEST(StatsDoor, TraceIdPropagatesThroughRouterToEveryShard) {
  ClusterFixture cluster(7202);
  Member a, b;
  net::MinerDaemonOptions da;
  da.shards = 2;
  da.owned_shards = {0};
  net::MinerDaemonOptions db = da;
  db.owned_shards = {1};
  a.start(cluster.shards, cluster.sap_opts, cluster.seed, da);
  b.start(cluster.shards, cluster.sap_opts, cluster.seed, db);

  net::RouterDaemonOptions ropts;
  ropts.router.miners = {a.daemon->reactor_addr(), b.daemon->reactor_addr()};
  ropts.router.replicas = 1;
  ropts.router.seed = cluster.seed;
  ropts.router.parties = cluster.k;
  ropts.reactor.listen = {"127.0.0.1", 0};
  auto router = std::make_unique<net::RouterDaemon>(ropts);

  constexpr std::uint64_t kTraceId = 0xABCD12345678ull;
  net::ServeClient client(router->local_addr(), cluster.seed, cluster.k);
  client.set_trace(kTraceId);
  const auto resp = client.mine_named("record-count");
  EXPECT_FALSE(resp.values.empty());

  // The response frame echoes the id end to end...
  EXPECT_EQ(client.last_trace(), kTraceId);

  // ...the router recorded the hop under the SAME id (with its merge stage
  // stamped)...
  bool router_saw = false;
  for (const auto& rec : router->traces().recent()) {
    if (rec.id == kTraceId) {
      router_saw = true;
      EXPECT_GT(rec.total_ms(), 0.0);
    }
  }
  EXPECT_TRUE(router_saw);

  // ...and so did EVERY sharded miner the scatter touched (record-count has
  // an exact-merge contract: one partial per shard).
  for (Member* member : {&a, &b}) {
    bool miner_saw = false;
    for (const auto& rec : member->daemon->traces().recent())
      if (rec.id == kTraceId) miner_saw = true;
    EXPECT_TRUE(miner_saw) << "miner did not record the propagated trace id";
  }

  // The router's stats door serves the cluster-wide aggregate: merged
  // counters from both miners plus its own, per-miner gauges namespaced.
  net::ServeClient stats_client(router->local_addr(), cluster.seed, cluster.k);
  const proto::DecodedStats agg = stats_client.stats();
  EXPECT_GE(counter_value(agg.snapshot, "serve.requests"), 2u);
  EXPECT_GE(counter_value(agg.snapshot, "router.mine_requests"), 1u);
  bool namespaced = false;
  for (const auto& [name, value] : agg.snapshot.gauges)
    if (name.rfind("m0.", 0) == 0 || name.rfind("m1.", 0) == 0) namespaced = true;
  EXPECT_TRUE(namespaced) << "per-miner gauges must arrive namespaced m<i>.*";

  stats_client.bye();
  client.bye();
  router->stop();
  router.reset();
  a.stop();
  b.stop();
}

}  // namespace
