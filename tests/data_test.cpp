// Unit tests for sap::data: Dataset, splits, normalizers, partitioners,
// synthetic UCI generators, CSV round-trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <set>

#include "common/error.hpp"
#include "data/csv.hpp"
#include "data/dataset.hpp"
#include "data/normalize.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "linalg/stats.hpp"

namespace {

using sap::data::Dataset;
using sap::linalg::Matrix;
using sap::rng::Engine;

Dataset tiny_dataset() {
  Matrix f{{0.0, 0.0}, {1.0, 0.1}, {0.2, 0.9}, {0.8, 0.7}, {0.5, 0.5}, {0.3, 0.2}};
  return {"tiny", f, {0, 0, 1, 1, 0, 1}};
}

TEST(Dataset, BasicAccessors) {
  const Dataset ds = tiny_dataset();
  EXPECT_EQ(ds.size(), 6u);
  EXPECT_EQ(ds.dims(), 2u);
  EXPECT_EQ(ds.label(2), 1);
  EXPECT_DOUBLE_EQ(ds.record(1)[0], 1.0);
  EXPECT_EQ(ds.name(), "tiny");
}

TEST(Dataset, LabelCountMismatchThrows) {
  Matrix f(3, 2);
  EXPECT_THROW(Dataset("bad", f, {0, 1}), sap::Error);
}

TEST(Dataset, ClassesAndCounts) {
  const Dataset ds = tiny_dataset();
  EXPECT_EQ(ds.classes(), (std::vector<int>{0, 1}));
  EXPECT_EQ(ds.class_counts(), (std::vector<std::size_t>{3, 3}));
}

TEST(Dataset, FeaturesTransposedLayout) {
  const Dataset ds = tiny_dataset();
  const Matrix t = ds.features_T();
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 6u);
  EXPECT_DOUBLE_EQ(t(0, 1), 1.0);
}

TEST(Dataset, SubsetCopiesRowsAndLabels) {
  const Dataset ds = tiny_dataset();
  const std::vector<std::size_t> idx{2, 0};
  const Dataset sub = ds.subset(idx);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.label(0), 1);
  EXPECT_DOUBLE_EQ(sub.record(1)[1], 0.0);
  const std::vector<std::size_t> bad{9};
  EXPECT_THROW(ds.subset(bad), sap::Error);
}

TEST(Dataset, ConcatStacksRecords) {
  const Dataset ds = tiny_dataset();
  const Dataset both = Dataset::concat(ds, ds);
  EXPECT_EQ(both.size(), 12u);
  EXPECT_EQ(both.label(7), ds.label(1));
}

TEST(Dataset, ShufflePreservesMultiset) {
  Dataset ds = tiny_dataset();
  Engine eng(5);
  auto sum_before = 0.0;
  for (std::size_t i = 0; i < ds.size(); ++i) sum_before += ds.record(i)[0];
  ds.shuffle(eng);
  auto sum_after = 0.0;
  for (std::size_t i = 0; i < ds.size(); ++i) sum_after += ds.record(i)[0];
  EXPECT_NEAR(sum_before, sum_after, 1e-12);
  EXPECT_EQ(ds.class_counts(), (std::vector<std::size_t>{3, 3}));
}

TEST(Split, TrainTestSizesAndDisjointness) {
  const Dataset ds = sap::data::make_uci("Iris", 1);
  Engine eng(7);
  const auto split = sap::data::train_test_split(ds, 0.7, eng);
  EXPECT_EQ(split.train.size() + split.test.size(), ds.size());
  EXPECT_NEAR(static_cast<double>(split.train.size()) / ds.size(), 0.7, 0.02);
}

TEST(Split, BadFractionThrows) {
  const Dataset ds = tiny_dataset();
  Engine eng(1);
  EXPECT_THROW(sap::data::train_test_split(ds, 0.0, eng), sap::Error);
  EXPECT_THROW(sap::data::train_test_split(ds, 1.0, eng), sap::Error);
}

TEST(Split, StratifiedPreservesClassBalance) {
  const Dataset ds = sap::data::make_uci("Diabetes", 3);
  Engine eng(11);
  const auto split = sap::data::stratified_split(ds, 0.6, eng);
  const double skew_train = sap::data::class_skew(ds, split.train);
  const double skew_test = sap::data::class_skew(ds, split.test);
  EXPECT_LT(skew_train, 0.02);
  EXPECT_LT(skew_test, 0.03);
}

// ---------------------------------------------------------- normalizers

TEST(MinMax, MapsToUnitIntervalAndInverts) {
  const Dataset ds = sap::data::make_uci("Wine", 2);
  sap::data::MinMaxNormalizer norm;
  norm.fit(ds.features());
  const Matrix scaled = norm.transform(ds.features());
  for (double v : scaled.data()) {
    EXPECT_GE(v, -1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
  const Matrix back = norm.inverse(scaled);
  EXPECT_TRUE(back.approx_equal(ds.features(), 1e-9));
}

TEST(MinMax, ConstantColumnMapsToHalf) {
  Matrix f{{2.0, 1.0}, {2.0, 3.0}, {2.0, 5.0}};
  sap::data::MinMaxNormalizer norm;
  norm.fit(f);
  const Matrix scaled = norm.transform(f);
  EXPECT_DOUBLE_EQ(scaled(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(scaled(2, 0), 0.5);
  EXPECT_DOUBLE_EQ(scaled(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(scaled(2, 1), 1.0);
}

TEST(MinMax, TransformBeforeFitThrows) {
  sap::data::MinMaxNormalizer norm;
  Matrix f(2, 2);
  EXPECT_THROW(norm.transform(f), sap::Error);
}

TEST(ZScore, StandardizesColumns) {
  const Dataset ds = sap::data::make_uci("Heart", 4);
  sap::data::ZScoreNormalizer norm;
  norm.fit(ds.features());
  const Matrix z = norm.transform(ds.features());
  const auto mean = sap::linalg::col_means(z);
  const auto sd = sap::linalg::col_stddev(z);
  for (std::size_t c = 0; c < z.cols(); ++c) {
    EXPECT_NEAR(mean[c], 0.0, 1e-9);
    // Binary columns keep sd 1 after scaling too (any non-constant column).
    EXPECT_NEAR(sd[c], 1.0, 1e-9);
  }
  const Matrix back = norm.inverse(z);
  EXPECT_TRUE(back.approx_equal(ds.features(), 1e-9));
}

// ---------------------------------------------------------- partitioners

TEST(Partition, EveryRecordAssignedExactlyOnce) {
  const Dataset ds = sap::data::make_uci("Diabetes", 5);
  Engine eng(13);
  sap::data::PartitionOptions opts;
  const auto parts = sap::data::partition(ds, 6, opts, eng);
  ASSERT_EQ(parts.size(), 6u);
  std::size_t total = 0;
  double checksum = 0.0, checksum_pool = 0.0;
  for (const auto& p : parts) {
    total += p.size();
    for (std::size_t i = 0; i < p.size(); ++i) checksum += p.record(i)[0];
  }
  for (std::size_t i = 0; i < ds.size(); ++i) checksum_pool += ds.record(i)[0];
  EXPECT_EQ(total, ds.size());
  EXPECT_NEAR(checksum, checksum_pool, 1e-9);
}

TEST(Partition, RespectsMinRecords) {
  const Dataset ds = sap::data::make_uci("Iris", 6);
  Engine eng(17);
  sap::data::PartitionOptions opts;
  opts.min_records = 10;
  const auto parts = sap::data::partition(ds, 5, opts, eng);
  for (const auto& p : parts) EXPECT_GE(p.size(), 10u);
}

TEST(Partition, PoolTooSmallThrows) {
  const Dataset ds = tiny_dataset();
  Engine eng(1);
  sap::data::PartitionOptions opts;
  opts.min_records = 8;
  EXPECT_THROW(sap::data::partition(ds, 3, opts, eng), sap::Error);
}

TEST(Partition, UniformPartsHaveLowClassSkew) {
  const Dataset ds = sap::data::make_uci("Credit_g", 7);
  Engine eng(19);
  sap::data::PartitionOptions opts;
  opts.kind = sap::data::PartitionKind::kUniform;
  const auto parts = sap::data::partition(ds, 5, opts, eng);
  double mean_skew = 0.0;
  for (const auto& p : parts) mean_skew += sap::data::class_skew(ds, p);
  mean_skew /= static_cast<double>(parts.size());
  EXPECT_LT(mean_skew, 0.1);
}

TEST(Partition, ClassModeIsMoreSkewedThanUniform) {
  const Dataset ds = sap::data::make_uci("Credit_g", 8);
  Engine eng_u(23), eng_c(23);
  sap::data::PartitionOptions uni;
  uni.kind = sap::data::PartitionKind::kUniform;
  sap::data::PartitionOptions cls;
  cls.kind = sap::data::PartitionKind::kClass;
  cls.class_alpha = 0.4;
  const auto parts_u = sap::data::partition(ds, 5, uni, eng_u);
  const auto parts_c = sap::data::partition(ds, 5, cls, eng_c);
  double skew_u = 0.0, skew_c = 0.0;
  for (const auto& p : parts_u) skew_u += sap::data::class_skew(ds, p);
  for (const auto& p : parts_c) skew_c += sap::data::class_skew(ds, p);
  EXPECT_GT(skew_c, skew_u * 1.5);
}

TEST(Partition, NeedsAtLeastTwoParties) {
  const Dataset ds = sap::data::make_uci("Iris", 9);
  Engine eng(1);
  sap::data::PartitionOptions opts;
  EXPECT_THROW(sap::data::partition(ds, 1, opts, eng), sap::Error);
}

// ---------------------------------------------------------- synthetic suite

TEST(Synthetic, SuiteHasTwelvePaperDatasets) {
  const auto& suite = sap::data::uci_suite();
  ASSERT_EQ(suite.size(), 12u);
  EXPECT_EQ(suite.front().name, "Breast_w");
  EXPECT_EQ(suite.back().name, "Wine");
}

TEST(Synthetic, ShapesMatchSpecs) {
  for (const auto& spec : sap::data::uci_suite()) {
    const Dataset ds = sap::data::make_synthetic(spec, 42);
    EXPECT_EQ(ds.size(), spec.rows) << spec.name;
    EXPECT_EQ(ds.dims(), spec.dims) << spec.name;
    EXPECT_EQ(ds.classes().size(), spec.classes) << spec.name;
  }
}

TEST(Synthetic, DeterministicForSameSeed) {
  const Dataset a = sap::data::make_uci("Votes", 99);
  const Dataset b = sap::data::make_uci("Votes", 99);
  EXPECT_TRUE(a.features().approx_equal(b.features(), 0.0));
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(Synthetic, DifferentSeedsDiffer) {
  const Dataset a = sap::data::make_uci("Votes", 1);
  const Dataset b = sap::data::make_uci("Votes", 2);
  EXPECT_FALSE(a.features().approx_equal(b.features(), 1e-6));
}

TEST(Synthetic, VotesIsFullyBinary) {
  const Dataset ds = sap::data::make_uci("Votes", 3);
  for (double v : ds.features().data()) EXPECT_TRUE(v == 0.0 || v == 1.0);
}

TEST(Synthetic, PriorsApproximatelyRespected) {
  const Dataset ds = sap::data::make_uci("Shuttle", 4);
  const auto counts = ds.class_counts();
  const auto& spec = sap::data::uci_suite()[9];
  ASSERT_EQ(spec.name, "Shuttle");
  for (std::size_t c = 0; c < counts.size(); ++c) {
    const double frac = static_cast<double>(counts[c]) / ds.size();
    EXPECT_NEAR(frac, spec.priors[c], 0.02) << "class " << c;
  }
}

TEST(Synthetic, UnknownNameThrows) {
  EXPECT_THROW(sap::data::make_uci("NoSuchDataset", 1), sap::Error);
}

TEST(Synthetic, ClassesAreGeometricallySeparated) {
  // Between-class centroid distance should exceed the typical within-class
  // spread for a well-separated spec (Iris, sep 3.2).
  const Dataset ds = sap::data::make_uci("Iris", 5);
  const auto classes = ds.classes();
  std::vector<sap::linalg::Vector> centroids;
  for (int c : classes) {
    sap::linalg::Vector mean(ds.dims(), 0.0);
    std::size_t count = 0;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      if (ds.label(i) != c) continue;
      ++count;
      for (std::size_t f = 0; f < ds.dims(); ++f) mean[f] += ds.record(i)[f];
    }
    for (auto& v : mean) v /= static_cast<double>(count);
    centroids.push_back(std::move(mean));
  }
  double min_dist = 1e300;
  for (std::size_t a = 0; a < centroids.size(); ++a)
    for (std::size_t b = a + 1; b < centroids.size(); ++b)
      min_dist = std::min(min_dist, sap::linalg::distance(centroids[a], centroids[b]));
  EXPECT_GT(min_dist, 1.5);
}

// ---------------------------------------------------------- CSV

TEST(Csv, RoundTripPreservesData) {
  const Dataset ds = sap::data::make_uci("Iris", 10);
  const std::string path = "/tmp/sap_csv_test.csv";
  sap::data::save_csv(ds, path);
  const Dataset back = sap::data::load_csv(path, "iris-back");
  ASSERT_EQ(back.size(), ds.size());
  ASSERT_EQ(back.dims(), ds.dims());
  EXPECT_TRUE(back.features().approx_equal(ds.features(), 1e-12));
  EXPECT_EQ(back.labels(), ds.labels());
  std::remove(path.c_str());
}

TEST(Csv, CrlfAndTrailingBlanksAccepted) {
  // A Windows-written CSV: CRLF line endings, padding blanks inside cells,
  // and a blank CRLF-only line. Every cell must parse exactly as its Unix
  // counterpart would.
  const std::string path = "/tmp/sap_csv_crlf.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("f0,f1,label\r\n", f);
    std::fputs("1.5 ,\t2.25,0\r\n", f);
    std::fputs("\r\n", f);
    std::fputs("-0.5,4.0 ,1\r\n", f);
    std::fclose(f);
  }
  const Dataset ds = sap::data::load_csv(path, "crlf");
  ASSERT_EQ(ds.size(), 2u);
  ASSERT_EQ(ds.dims(), 2u);
  EXPECT_DOUBLE_EQ(ds.features()(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(ds.features()(0, 1), 2.25);
  EXPECT_DOUBLE_EQ(ds.features()(1, 0), -0.5);
  EXPECT_DOUBLE_EQ(ds.features()(1, 1), 4.0);
  EXPECT_EQ(ds.labels(), (std::vector<int>{0, 1}));
  std::remove(path.c_str());
}

TEST(Csv, CrlfRoundTripMatchesUnixRoundTrip) {
  // save_csv writes Unix endings; rewriting the same bytes with CRLF
  // endings must load back to the identical dataset.
  const Dataset ds = sap::data::make_uci("Iris", 11);
  const std::string unix_path = "/tmp/sap_csv_unix.csv";
  const std::string crlf_path = "/tmp/sap_csv_crlf_rt.csv";
  sap::data::save_csv(ds, unix_path);
  {
    std::FILE* in = std::fopen(unix_path.c_str(), "rb");
    std::FILE* out = std::fopen(crlf_path.c_str(), "wb");
    ASSERT_NE(in, nullptr);
    ASSERT_NE(out, nullptr);
    int c;
    while ((c = std::fgetc(in)) != EOF) {
      if (c == '\n') std::fputc('\r', out);
      std::fputc(c, out);
    }
    std::fclose(in);
    std::fclose(out);
  }
  const Dataset from_unix = sap::data::load_csv(unix_path, "unix");
  const Dataset from_crlf = sap::data::load_csv(crlf_path, "crlf");
  ASSERT_EQ(from_crlf.size(), from_unix.size());
  EXPECT_TRUE(from_crlf.features().approx_equal(from_unix.features(), 0.0));
  EXPECT_EQ(from_crlf.labels(), from_unix.labels());
  std::remove(unix_path.c_str());
  std::remove(crlf_path.c_str());
}

TEST(DatasetOps, AppendAndSlice) {
  const Dataset ds = sap::data::make_uci("Iris", 12);
  Dataset head = ds.slice(0, 100);
  const Dataset tail = ds.slice(100, 150);
  EXPECT_EQ(head.size(), 100u);
  EXPECT_EQ(tail.size(), 50u);
  head.append(tail);
  ASSERT_EQ(head.size(), ds.size());
  EXPECT_TRUE(head.features().approx_equal(ds.features(), 0.0));
  EXPECT_EQ(head.labels(), ds.labels());
  EXPECT_THROW((void)ds.slice(100, 50), sap::Error);
  EXPECT_THROW((void)ds.slice(0, 151), sap::Error);
  Dataset two = ds.slice(0, 2);
  const Dataset other("w", sap::linalg::Matrix(1, 3, 0.0), {0});
  EXPECT_THROW(two.append(other), sap::Error);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(sap::data::load_csv("/tmp/definitely_missing_sap.csv", "x"), sap::Error);
}

TEST(Csv, MalformedRowThrows) {
  const std::string path = "/tmp/sap_csv_bad.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("f0,label\n1.0,0\nnot_a_number,1\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(sap::data::load_csv(path, "bad"), sap::Error);
  std::remove(path.c_str());
}

}  // namespace
