// Sharded-cluster tests (net/cluster.hpp + the sharded MiningEngine):
//
//   * engine layer: every job's report is BIT-IDENTICAL across shard counts
//     {1, 2, 4} and both hash layouts — from a segment install and again
//     after interleaved per-nonce appends (the exact-merge contract and the
//     gather fallback both preserve the canonical (nonce, seq) order);
//   * router layer: a two-miner cluster's scatter-gather responses equal a
//     flat engine over the union of the shard snapshots, contributions
//     hash-route to the owning miner (kNotOwner never reaches the client);
//   * failover: a dead primary is routed around (zero failed requests), a
//     replica BELOW the router's epoch floor is refused as stale rather
//     than served, and recovery through the surviving replica resumes at
//     the floor;
//   * typed refusals: kBadRequest is definitive — no replica failover is
//     burned probing other owners.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "data/normalize.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "net/cluster.hpp"
#include "net/remote.hpp"
#include "protocol/mining_engine.hpp"
#include "protocol/party_logic.hpp"

namespace {

using sap::data::Dataset;
using sap::rng::Engine;
namespace net = sap::net;
namespace proto = sap::proto;

// ---- engine layer --------------------------------------------------------

/// A normalized pool cut into per-nonce segments (distinct nonces, canonical
/// ascending order — what unify_pool hands the daemon).
std::vector<proto::PoolSegment> make_segments(const Dataset& pool,
                                              const std::vector<std::uint64_t>& nonces) {
  std::vector<proto::PoolSegment> segments;
  const std::size_t per = pool.size() / nonces.size();
  for (std::size_t i = 0; i < nonces.size(); ++i) {
    const std::size_t hi = (i + 1 == nonces.size()) ? pool.size() : (i + 1) * per;
    segments.push_back({nonces[i], pool.slice(i * per, hi)});
  }
  return segments;
}

Dataset normalized_pool(const std::string& name, std::uint64_t seed) {
  const Dataset raw = sap::data::make_uci(name, seed);
  sap::data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  return {raw.name(), norm.transform(raw.features()), raw.labels()};
}

proto::MiningEngine make_engine(std::size_t shards, proto::ShardLayout layout) {
  return proto::MiningEngine({.threads = 0,
                              .cache_models = true,
                              .shards = shards,
                              .layout = layout,
                              .owned = {}});
}

const char* const kAllJobs[] = {"record-count",      "class-histogram",
                                "nb-train-accuracy", "knn-train-accuracy",
                                "svm-train-accuracy", "perceptron-train-accuracy"};

proto::JobParams job_params(const std::string& job) {
  proto::JobParams params;
  // Cap the eval prefix so the O(n^2) scorers stay cheap; the cap must be
  // identical flat vs sharded for the reports to be comparable at all.
  if (job.find("train-accuracy") != std::string::npos) params["eval-records"] = 48.0;
  return params;
}

TEST(ShardedEngine, ReportsBitIdenticalAcrossShardCountsAndLayouts) {
  const Dataset pool = normalized_pool("Iris", 7001);
  // Nonces chosen ascending with no structure the hash could favor.
  const std::vector<std::uint64_t> nonces = {11, 5021, 90210, 777001, 900000017};
  const auto segments = make_segments(pool, nonces);

  auto reference = make_engine(1, proto::ShardLayout::kHashMod);
  reference.set_pool_segments(segments);
  ASSERT_EQ(reference.pool_epoch(), 1u);

  for (const std::size_t shards : {2u, 4u}) {
    for (const auto layout : {proto::ShardLayout::kHashMod, proto::ShardLayout::kHashRange}) {
      auto engine = make_engine(shards, layout);
      engine.set_pool_segments(segments);
      EXPECT_EQ(engine.pool_epoch(), 1u);
      for (const char* job : kAllJobs) {
        const auto want = reference.run({job, job_params(job)});
        const auto got = engine.run({job, job_params(job)});
        EXPECT_EQ(got.values, want.values)
            << job << " diverged at " << shards << " shards, layout "
            << static_cast<int>(layout);
      }
    }
  }
}

/// Rows of `a` followed by rows of `b` (labels too).
Dataset concat(const Dataset& a, const Dataset& b) {
  sap::linalg::Matrix features(a.size() + b.size(), a.dims(), 0.0);
  std::vector<int> labels;
  labels.reserve(a.size() + b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto rec = a.record(i);
    std::copy(rec.begin(), rec.end(), features.row(i).begin());
    labels.push_back(a.label(i));
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    const auto rec = b.record(i);
    std::copy(rec.begin(), rec.end(), features.row(a.size() + i).begin());
    labels.push_back(b.label(i));
  }
  return {a.name(), std::move(features), std::move(labels)};
}

TEST(ShardedEngine, ReportsBitIdenticalAfterInterleavedAppends) {
  const Dataset pool = normalized_pool("Iris", 7002);
  const std::vector<std::uint64_t> nonces = {401, 63029, 5500001};
  const auto segments = make_segments(pool.slice(0, 120), nonces);
  const Dataset tail = pool.slice(120, pool.size());

  // The contract: sharded serving is bit-identical to CONCATENATED-POOL
  // training in canonical (nonce, seq) order — so the reference is a flat
  // engine over the final per-nonce segments, while the sharded engines
  // receive the same batches as interleaved appends (two different global
  // arrival orders).
  std::vector<std::pair<std::uint64_t, Dataset>> appends;
  for (std::size_t b = 0; b < 6; ++b) {
    const std::size_t at = b * 5;
    appends.emplace_back(nonces[b % nonces.size()], tail.slice(at, at + 5));
  }
  auto final_segments = segments;
  for (auto& segment : final_segments)
    for (const auto& [nonce, batch] : appends)
      if (nonce == segment.nonce) segment.rows = concat(segment.rows, batch);
  auto reference = make_engine(1, proto::ShardLayout::kHashMod);
  reference.set_pool_segments(final_segments);

  for (const std::size_t shards : {2u, 4u}) {
    auto sharded = make_engine(shards, proto::ShardLayout::kHashMod);
    sharded.set_pool_segments(segments);
    if (shards == 2) {  // forward interleaving
      for (const auto& [nonce, batch] : appends) (void)sharded.append_records(nonce, batch);
    } else {  // reversed across nonces, per-nonce order preserved
      for (std::size_t i = nonces.size(); i-- > 0;)
        for (const auto& [nonce, batch] : appends)
          if (nonce == nonces[i]) (void)sharded.append_records(nonce, batch);
    }
    for (const char* job : kAllJobs) {
      const auto want = reference.run({job, job_params(job)});
      const auto got = sharded.run({job, job_params(job)});
      EXPECT_EQ(got.values, want.values)
          << job << " diverged after appends at " << shards << " shards";
    }
  }
}

// ---- router layer --------------------------------------------------------

/// One in-process cluster member: a MinerDaemon plus its k exchange parties.
/// Party 0 holds the daemon open until release() — releasing it ends the
/// daemon run loop and STOPS the reactor, which is how the failover tests
/// take a miner down without process machinery.
struct Member {
  std::unique_ptr<net::MinerDaemon> daemon;
  std::future<net::MinerDaemon::Summary> done;
  std::vector<std::thread> parties;
  std::promise<void> release;

  void start(const std::vector<Dataset>& shards, const proto::SapOptions& sap_opts,
             std::uint64_t seed, net::MinerDaemonOptions opts) {
    const std::size_t k = shards.size();
    opts.parties = k;
    opts.seed = seed;
    opts.reactor_loops = 2;
    opts.reactor_compute_threads = 2;
    daemon = std::make_unique<net::MinerDaemon>(opts);
    done = std::async(std::launch::async, [this] { return daemon->run(); });
    std::promise<void> exchanged;
    std::shared_future<void> released(release.get_future());
    for (std::size_t i = 0; i < k; ++i) {
      parties.emplace_back([this, &shards, &sap_opts, seed, k, i, released,
                            &exchanged] {
        net::PartyClientOptions popts;
        popts.connect = daemon->local_addr();
        popts.index = i;
        popts.parties = k;
        popts.sap = sap_opts;
        net::PartyClient party(shards[i], popts);
        (void)party.run_exchange();
        if (i == 0) {
          exchanged.set_value();
          released.wait();
        }
        party.finish();
      });
    }
    exchanged.get_future().wait();
  }

  net::MinerDaemon::Summary stop() {
    release.set_value();
    for (auto& t : parties) t.join();
    return done.get();
  }
};

struct Cluster {
  Dataset pool;
  std::vector<Dataset> shards;
  proto::SapOptions sap_opts;
  std::uint64_t seed;
  std::size_t k;

  explicit Cluster(std::uint64_t seed_in, std::size_t k_in = 3) : seed(seed_in), k(k_in) {
    pool = normalized_pool("Iris", seed);
    Engine shard_eng(seed ^ 0xBEEF);
    sap::data::PartitionOptions popts;
    shards = sap::data::partition(pool.slice(0, 100), k, popts, shard_eng);
    sap_opts = proto::SapOptions::fast();
    sap_opts.seed = seed;
    sap_opts.compute_satisfaction = false;
  }

  /// Party 0's contribution wires (the adaptor the exchange installed
  /// accepts them), batches drawn from the held-back pool tail.
  std::vector<std::vector<double>> wires(std::size_t count) const {
    const auto seeds = proto::logic::derive_session_seeds(seed, k);
    Engine eng = seeds.provider_eng[0];
    const auto local = proto::logic::optimize_local(shards[0].features_T(),
                                                    shards[0].dims(), sap_opts, eng);
    std::vector<std::vector<double>> out;
    for (std::size_t b = 0; b < count; ++b) {
      const Dataset batch = pool.slice(100 + b * 10, 110 + b * 10);
      const auto y = local.g.apply(batch.features_T(), eng);
      out.push_back(proto::encode_contribution(local.nonce, y, batch.labels()));
    }
    return out;
  }
};

/// Flat canonical pool from the union of every member's owned shard views —
/// the ground truth a cluster response must match bit for bit.
Dataset union_pool(const std::vector<Member*>& members) {
  struct Row {
    proto::PoolKey key;
    const proto::ShardSnapshot* snap;
    std::size_t row;
  };
  std::vector<proto::PoolShard::View> views;
  std::vector<Row> rows;
  for (const Member* m : members) {
    for (const std::size_t g : m->daemon->engine().owned_shards()) {
      views.push_back(m->daemon->engine().shard_view(g));
      const auto& snap = *views.back().snap;
      for (std::size_t i = 0; i < snap.keys.size(); ++i)
        rows.push_back({snap.keys[i], &snap, i});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.key < b.key; });
  const std::size_t dims = rows.empty() ? 0 : rows.front().snap->rows.dims();
  sap::linalg::Matrix features(rows.size(), dims, 0.0);
  std::vector<int> labels(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto rec = rows[i].snap->rows.record(rows[i].row);
    std::copy(rec.begin(), rec.end(), features.row(i).begin());
    labels[i] = rows[i].snap->rows.label(rows[i].row);
  }
  return {"union", std::move(features), std::move(labels)};
}

TEST(ShardRouter, TwoMinerClusterMatchesFlatEngineOverUnionPool) {
  Cluster cluster(5151);
  Member a, b;
  net::MinerDaemonOptions da;
  da.shards = 2;
  da.owned_shards = {0};
  Member* members[] = {&a, &b};
  net::MinerDaemonOptions db = da;
  db.owned_shards = {1};
  a.start(cluster.shards, cluster.sap_opts, cluster.seed, da);
  b.start(cluster.shards, cluster.sap_opts, cluster.seed, db);

  net::ShardRouterOptions ropts;
  ropts.miners = {a.daemon->reactor_addr(), b.daemon->reactor_addr()};
  ropts.replicas = 1;
  ropts.seed = cluster.seed;
  ropts.parties = cluster.k;
  net::ShardRouter router(ropts);

  // Contributions hash-route to whichever miner owns the nonce's shard;
  // the client never sees a kNotOwner bounce.
  const auto wires = cluster.wires(2);
  for (const auto& wire : wires) {
    const auto receipt = router.contribute_wire(wire);
    EXPECT_GE(receipt.pool_epoch, 2u);
  }
  EXPECT_EQ(router.failovers(), 0u);

  // Exact-merge jobs, gather-fallback jobs, and the no-params counters all
  // equal a flat engine over the union of the two miners' shard snapshots.
  auto flat = make_engine(1, proto::ShardLayout::kHashMod);
  flat.set_pool(union_pool({members[0], members[1]}));
  for (const char* job : kAllJobs) {
    const auto want = flat.run({job, job_params(job)});
    const auto got = router.mine_named(job, job_params(job));
    EXPECT_EQ(got.values, want.values) << job << " diverged through the router";
  }

  // kBadRequest is definitive: one contact, no replica failover burned.
  const std::size_t failovers_before = router.failovers();
  try {
    (void)router.mine_named("no-such-job");
    ADD_FAILURE() << "expected net::ServeError for an unknown job";
  } catch (const net::ServeError& e) {
    EXPECT_EQ(e.code(), proto::ServeErrorCode::kBadRequest);
  }
  EXPECT_EQ(router.failovers(), failovers_before);

  a.stop();
  b.stop();
}

TEST(ShardRouter, FailoverServesReplicaAndEpochFloorRefusesStaleReads) {
  Cluster cluster(6262);
  // One shard, two owners: miner A primary, miner B replica — both install
  // the identical exchange pool and both accept routed contributions.
  Member a, b;
  net::MinerDaemonOptions opts;
  opts.shards = 1;
  a.start(cluster.shards, cluster.sap_opts, cluster.seed, opts);
  b.start(cluster.shards, cluster.sap_opts, cluster.seed, opts);

  net::ShardRouterOptions ropts;
  ropts.miners = {a.daemon->reactor_addr(), b.daemon->reactor_addr()};
  ropts.shards = 1;
  ropts.replicas = 2;
  ropts.seed = cluster.seed;
  ropts.parties = cluster.k;
  net::ShardRouter router(ropts);

  const auto wires = cluster.wires(3);
  // Routed contribution lands on BOTH owners (that is what keeps the
  // replica promotable); floor = the acked epoch 2.
  (void)router.contribute_wire(wires[0]);
  EXPECT_EQ(router.epoch_floors()[0], 2u);
  const auto served = router.mine_named("nb-train-accuracy");
  EXPECT_EQ(served.pool_epoch, 2u);

  // A contribution that bypasses the router (straight to the primary)
  // leaves the replica one epoch behind; serving from the primary raises
  // the router's floor past the replica.
  {
    net::ServeClient direct(a.daemon->reactor_addr(), cluster.seed, cluster.k);
    (void)direct.contribute_wire(wires[1]);
    direct.bye();
  }
  EXPECT_EQ(router.mine_named("nb-train-accuracy").pool_epoch, 3u);
  EXPECT_EQ(router.epoch_floors()[0], 3u);

  // Kill the primary: the replica is BELOW the floor, so failover must
  // refuse (stale read) rather than silently serve the older pool.
  a.stop();
  try {
    (void)router.mine_named("nb-train-accuracy");
    ADD_FAILURE() << "expected ServeError{kUnavailable} for a stale replica";
  } catch (const net::ServeError& e) {
    EXPECT_EQ(e.code(), proto::ServeErrorCode::kUnavailable);
  }
  EXPECT_GE(router.failovers(), 1u);

  // Recovery: a routed contribution reaches the surviving replica, lifting
  // it to the floor — reads resume with ZERO failed requests.
  const auto receipt = router.contribute_wire(wires[2]);
  EXPECT_EQ(receipt.pool_epoch, 3u);
  const auto after = router.mine_named("nb-train-accuracy");
  EXPECT_EQ(after.pool_epoch, 3u);
  EXPECT_FALSE(after.values.empty());

  b.stop();
}

}  // namespace
