// sap::net integration tests — the wire layer and both TCP deployment
// shapes over 127.0.0.1:
//
//   * frame codec: round trips, incremental decoding, strict rejection;
//   * deadlines: dead hubs and silent peers fail with sap::Error, fast;
//   * relay mode: a full SapSession (exchange + Contribute + mining jobs)
//     over TransportKind::kTcp, asserted BIT-IDENTICAL to kSimulated;
//   * distributed mode: MinerDaemon + k PartyClient drivers in separate
//     threads with real sockets, pooled results bit-identical to
//     kSimulated, wire mining requests equal to in-process serving.
// (tests/cli_test.cpp repeats the distributed topology with genuinely
// separate OS processes through sap_cli.)
#include <gtest/gtest.h>

#include <bit>
#include <future>
#include <thread>

#include "common/error.hpp"
#include "data/normalize.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "net/frame.hpp"
#include "net/remote.hpp"
#include "net/socket.hpp"
#include "net/tcp_transport.hpp"
#include "protocol/session.hpp"

namespace {

using sap::data::Dataset;
using sap::rng::Engine;
namespace net = sap::net;
namespace proto = sap::proto;

// ---- shared fixtures -----------------------------------------------------

struct StreamSetup {
  std::vector<Dataset> shards;
  Dataset stream;
};

/// Normalized Iris: 100 records shard into the exchange, 50 held back as
/// the Contribute stream.
StreamSetup stream_setup(std::size_t k, std::uint64_t seed) {
  const Dataset raw = sap::data::make_uci("Iris", seed);
  sap::data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  const Dataset pool(raw.name(), norm.transform(raw.features()), raw.labels());
  Engine eng(seed ^ 0xBEEF);
  sap::data::PartitionOptions opts;
  StreamSetup setup;
  setup.shards = sap::data::partition(pool.slice(0, 100), k, opts, eng);
  setup.stream = pool.slice(100, 150);
  return setup;
}

proto::SapOptions fast_opts(std::uint64_t seed) {
  auto opts = proto::SapOptions::fast();
  opts.seed = seed;
  opts.compute_satisfaction = false;
  return opts;
}

net::TcpOptions test_tcp() {
  net::TcpOptions tcp;
  tcp.connect_timeout_ms = 10000;
  tcp.receive_timeout_ms = 30000;  // CI-safe; deadline tests shrink it
  return tcp;
}

// ---- frame codec ---------------------------------------------------------

TEST(Frame, RoundTripsThroughIncrementalReader) {
  net::Frame frame;
  frame.type = net::FrameType::kData;
  frame.payload_kind = static_cast<std::uint8_t>(proto::PayloadKind::kContribution);
  frame.from = 3;
  frame.to = 7;
  const std::vector<double> payload{1.5, -2.25, 1e300, 0.0};
  frame.body = net::envelope_body(proto::EncryptedEnvelope(payload, 0xFEED));

  std::vector<std::uint8_t> bytes;
  net::encode_frame(frame, bytes);
  net::Frame second;
  second.type = net::FrameType::kBye;
  net::encode_frame(second, bytes);

  // Feed one byte at a time: the reader must never mis-frame.
  net::FrameReader reader;
  std::vector<net::Frame> out;
  net::Frame decoded;
  for (const std::uint8_t b : bytes) {
    reader.feed(&b, 1);
    while (reader.next(decoded)) out.push_back(decoded);
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].type, net::FrameType::kData);
  EXPECT_EQ(out[0].from, 3u);
  EXPECT_EQ(out[0].to, 7u);
  EXPECT_EQ(out[0].payload_kind, static_cast<std::uint8_t>(proto::PayloadKind::kContribution));
  EXPECT_EQ(net::body_envelope(out[0].body).open(0xFEED), payload);
  EXPECT_EQ(out[1].type, net::FrameType::kBye);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(Frame, RejectsHostileInput) {
  net::Frame frame;
  frame.type = net::FrameType::kWelcome;
  frame.body = net::u32_body(5);
  std::vector<std::uint8_t> good;
  net::encode_frame(frame, good);

  net::Frame out;
  {  // bad magic
    auto bytes = good;
    bytes[0] ^= 0xFF;
    net::FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    EXPECT_THROW((void)reader.next(out), sap::Error);
  }
  {  // wrong version
    auto bytes = good;
    bytes[4] = 9;
    net::FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    EXPECT_THROW((void)reader.next(out), sap::Error);
  }
  {  // unknown type
    auto bytes = good;
    bytes[5] = 77;
    net::FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    EXPECT_THROW((void)reader.next(out), sap::Error);
  }
  {  // corrupt checksum
    auto bytes = good;
    bytes.back() ^= 0x01;
    net::FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    EXPECT_THROW((void)reader.next(out), sap::Error);
  }
  {  // oversized length prefix must be rejected before any allocation
    auto bytes = good;
    bytes[16] = 0xFF;
    bytes[17] = 0xFF;
    bytes[18] = 0xFF;
    bytes[19] = 0x7F;
    net::FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    EXPECT_THROW((void)reader.next(out), sap::Error);
  }
  {  // truncation is "need more bytes", never a crash
    net::FrameReader reader;
    reader.feed(good.data(), good.size() - 1);
    EXPECT_FALSE(reader.next(out));
  }
}

TEST(Frame, EnvelopeBodyIsByteExact) {
  const std::vector<double> payload{3.14, -0.0, 42.0};
  const proto::EncryptedEnvelope env(payload, 0xABCDEF);
  const auto body = net::envelope_body(env);
  const auto back = net::body_envelope(body);
  EXPECT_EQ(back.checksum(), env.checksum());
  ASSERT_EQ(back.ciphertext().size(), env.ciphertext().size());
  for (std::size_t i = 0; i < env.ciphertext().size(); ++i)
    EXPECT_EQ(back.ciphertext()[i], env.ciphertext()[i]);
  EXPECT_EQ(back.open(0xABCDEF), payload);

  EXPECT_THROW((void)net::body_envelope({}), sap::Error);
  EXPECT_THROW((void)net::body_envelope(std::vector<std::uint8_t>(13, 0)), sap::Error);
}

TEST(Frame, SocketAddrParses) {
  const auto addr = net::SocketAddr::parse("127.0.0.1:8080");
  EXPECT_EQ(addr.host, "127.0.0.1");
  EXPECT_EQ(addr.port, 8080);
  EXPECT_EQ(net::SocketAddr::parse("localhost:1").port, 1);
  EXPECT_THROW((void)net::SocketAddr::parse("no-port"), sap::Error);
  EXPECT_THROW((void)net::SocketAddr::parse("127.0.0.1:99999"), sap::Error);
  EXPECT_THROW((void)net::SocketAddr::parse("not.an.ip:80"), sap::Error);
  EXPECT_THROW((void)net::SocketAddr::parse(":80"), sap::Error);
}

// ---- deadlines -----------------------------------------------------------

TEST(TcpDeadline, ConnectToDeadPortFails) {
  // Grab an ephemeral port, then close the listener so nothing is there.
  const auto dead = net::TcpListener::listen({"127.0.0.1", 0}).local_addr();
  net::TcpOptions tcp;
  tcp.connect_timeout_ms = 500;
  EXPECT_THROW((void)net::TcpTransport::connect(dead, 1, tcp), sap::Error);
}

TEST(TcpDeadline, ReceiveTimesOutCleanly) {
  auto hub = net::TcpTransport::listen({"127.0.0.1", 0}, 42, test_tcp());
  net::TcpOptions tcp = test_tcp();
  tcp.receive_timeout_ms = 200;
  auto client = net::TcpTransport::connect(hub->local_addr(), 42, tcp);
  const auto id = client->add_party();
  proto::Transport::Delivery out;
  EXPECT_FALSE(client->try_receive(id, out, 100));
  EXPECT_THROW((void)client->receive(id), sap::Error);
  EXPECT_FALSE(client->has_mail(id));
}

TEST(TcpDeadline, DuplicateClaimIsRefused) {
  auto hub = net::TcpTransport::listen({"127.0.0.1", 0}, 42, test_tcp());
  auto a = net::TcpTransport::connect(hub->local_addr(), 42, test_tcp());
  auto b = net::TcpTransport::connect(hub->local_addr(), 42, test_tcp());
  EXPECT_EQ(a->claim_party(0), 0u);
  EXPECT_THROW((void)b->claim_party(0), sap::Error);
}

TEST(TcpDeadline, MakeTransportNeedsAddress) {
  EXPECT_EQ(proto::to_string(proto::TransportKind::kTcp), "tcp");
  EXPECT_THROW((void)proto::make_transport(proto::TransportKind::kTcp, 1), sap::Error);
}

// ---- relay mode: SapSession over TCP ------------------------------------

TEST(TcpRelay, FullSessionBitIdenticalToSimulated) {
  // Reference run: synchronous in-process.
  auto ref_setup = stream_setup(4, 907);
  proto::SapSession reference(std::move(ref_setup.shards), fast_opts(907));
  const auto ref_result = reference.mine_named("nb-train-accuracy");
  const auto ref_receipt = reference.contribute(1, ref_setup.stream.slice(0, 16));
  const auto ref_pool = *reference.engine().pool_view().data;

  // Same logical session, every message relayed through a hub process...
  // here a hub transport in this process, reached over real loopback TCP.
  auto hub = net::TcpTransport::listen({"127.0.0.1", 0}, 0, test_tcp());
  auto tcp_setup = stream_setup(4, 907);
  auto opts = fast_opts(907);
  opts.transport = proto::TransportKind::kTcp;
  proto::SapSession session(std::move(tcp_setup.shards), opts,
                            net::tcp_transport_factory(hub->local_addr(), test_tcp()));
  const auto result = session.mine_named("nb-train-accuracy");
  const auto receipt = session.contribute(1, tcp_setup.stream.slice(0, 16));
  const auto pool = *session.engine().pool_view().data;

  // Bit-identical pooled space, reports, and job results.
  ASSERT_EQ(pool.size(), ref_pool.size());
  EXPECT_EQ(net::dataset_digest(pool), net::dataset_digest(ref_pool));
  EXPECT_EQ(receipt.pool_epoch, ref_receipt.pool_epoch);
  EXPECT_EQ(receipt.pool_records, ref_receipt.pool_records);
  ASSERT_EQ(result.parties.size(), ref_result.parties.size());
  for (std::size_t i = 0; i < result.parties.size(); ++i) {
    EXPECT_EQ(result.parties[i].local_rho, ref_result.parties[i].local_rho);
    EXPECT_EQ(result.parties[i].risk_sap, ref_result.parties[i].risk_sap);
  }
  // Cost accounting stays in ciphertext terms, so it matches too.
  EXPECT_EQ(result.messages, ref_result.messages);
  EXPECT_EQ(result.total_bytes, ref_result.total_bytes);
  // And the relay really carried the session: one connection, frames flowed.
  EXPECT_EQ(hub->total_connections(), 1u);
}

TEST(TcpRelay, DroppedSetupMessageFailsCleanly) {
  auto setup = stream_setup(3, 911);
  auto hub = net::TcpTransport::listen({"127.0.0.1", 0}, 0, test_tcp());
  net::TcpOptions tcp = test_tcp();
  tcp.receive_timeout_ms = 2000;  // a lost message must not hang the test
  auto opts = fast_opts(911);
  opts.transport = proto::TransportKind::kTcp;
  proto::SapSession session(std::move(setup.shards), opts,
                            net::tcp_transport_factory(hub->local_addr(), tcp));
  session.inject_faults([](proto::PartyId, proto::PartyId to, proto::PayloadKind kind) {
    return kind == proto::PayloadKind::kTargetSpace && to == 0;
  });
  EXPECT_THROW(session.run_until(proto::SessionPhase::kPerturbAndForward), sap::Error);
  EXPECT_TRUE(session.failed());
  EXPECT_EQ(session.transport().dropped_count(), 1u);
}

// ---- distributed mode: daemon + party clients ---------------------------

struct DistributedRun {
  net::MinerDaemon::Summary summary;
  std::vector<proto::PartyReport> reports;
  std::vector<proto::WireMiningResponse> responses;  // from party 0
};

/// Run k party clients (threads, real sockets) against a MinerDaemon.
/// Party 0 additionally streams `batches` sequential contributions and
/// issues one nb-train-accuracy request after each.
DistributedRun run_distributed(std::size_t k, std::uint64_t seed,
                               const std::vector<Dataset>& shards,
                               const std::vector<Dataset>& batches) {
  net::MinerDaemonOptions daemon_opts;
  daemon_opts.listen = {"127.0.0.1", 0};
  daemon_opts.parties = k;
  daemon_opts.seed = seed;
  daemon_opts.tcp = test_tcp();
  net::MinerDaemon daemon(daemon_opts);
  const auto addr = daemon.local_addr();

  auto daemon_future = std::async(std::launch::async, [&] { return daemon.run(); });

  DistributedRun run;
  run.reports.resize(k);
  std::mutex mutex;
  std::vector<std::thread> parties;
  for (std::size_t i = 0; i < k; ++i) {
    parties.emplace_back([&, i] {
      net::PartyClientOptions popts;
      popts.connect = addr;
      popts.index = i;
      popts.parties = k;
      popts.sap = fast_opts(seed);
      popts.tcp = test_tcp();
      net::PartyClient party(shards[i], popts);
      const auto report = party.run_exchange();
      std::vector<proto::WireMiningResponse> responses;
      if (i == 0) {
        for (const auto& batch : batches) {
          (void)party.contribute(batch);
          responses.push_back(party.mine_named("nb-train-accuracy"));
        }
      }
      party.finish();
      std::lock_guard lock(mutex);
      run.reports[i] = report;
      if (i == 0) run.responses = std::move(responses);
    });
  }
  for (auto& t : parties) t.join();
  run.summary = daemon_future.get();
  return run;
}

TEST(TcpDistributed, ExchangeAndContributeBitIdenticalToSimulated) {
  const std::size_t k = 3;
  const std::uint64_t seed = 1313;
  auto setup = stream_setup(k, seed);
  const std::vector<Dataset> batches{setup.stream.slice(0, 12), setup.stream.slice(12, 30)};

  // Reference: the identical logical session in one process (kSimulated),
  // with party 0 contributing the same batches in the same order.
  proto::SapSession reference(setup.shards, fast_opts(seed));
  reference.run_until(proto::SessionPhase::kMine);
  std::vector<std::vector<double>> ref_values;
  for (const auto& batch : batches) {
    (void)reference.contribute(0, batch);
    ref_values.push_back(reference.engine().run({"nb-train-accuracy", {}}).values);
  }
  const auto ref_pool = *reference.engine().pool_view().data;

  const auto run = run_distributed(k, seed, setup.shards, batches);

  // The pooled unified space is bit-identical across the process boundary.
  EXPECT_EQ(run.summary.pool_records, ref_pool.size());
  EXPECT_EQ(run.summary.pool_digest, net::dataset_digest(ref_pool));
  EXPECT_EQ(run.summary.contributions, batches.size());
  EXPECT_EQ(run.summary.pool_epoch, 1u + batches.size());

  // Wire-served job reports equal in-process serving after every append.
  ASSERT_EQ(run.responses.size(), ref_values.size());
  for (std::size_t b = 0; b < ref_values.size(); ++b)
    EXPECT_EQ(run.responses[b].values, ref_values[b]) << "batch " << b;

  // Party-side accounting matches the in-process run exactly.
  const auto ref_result = reference.mine();
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(run.reports[i].local_rho, ref_result.parties[i].local_rho) << i;
    EXPECT_EQ(run.reports[i].bound, ref_result.parties[i].bound) << i;
    EXPECT_EQ(run.reports[i].satisfaction, ref_result.parties[i].satisfaction) << i;
    EXPECT_EQ(run.reports[i].risk_sap, ref_result.parties[i].risk_sap) << i;
  }
}

TEST(TcpDistributed, DaemonSurvivesHostileClientsAndSendsNegativeReceipts) {
  const std::size_t k = 3;
  const std::uint64_t seed = 1919;
  auto setup = stream_setup(k, seed);
  const auto seeds = sap::proto::logic::derive_session_seeds(seed, k);

  net::MinerDaemonOptions daemon_opts;
  daemon_opts.listen = {"127.0.0.1", 0};
  daemon_opts.parties = k;
  daemon_opts.seed = seed;
  daemon_opts.tcp = test_tcp();
  net::MinerDaemon daemon(daemon_opts);
  const auto addr = daemon.local_addr();
  auto daemon_future = std::async(std::launch::async, [&] { return daemon.run(); });

  // Honest parties run the exchange but stay connected.
  std::vector<std::unique_ptr<net::PartyClient>> parties(k);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < k; ++i) {
    threads.emplace_back([&, i] {
      net::PartyClientOptions popts;
      popts.connect = addr;
      popts.index = i;
      popts.parties = k;
      popts.sap = fast_opts(seed);
      popts.tcp = test_tcp();
      parties[i] = std::make_unique<net::PartyClient>(setup.shards[i], popts);
      (void)parties[i]->run_exchange();
    });
  }
  for (auto& t : threads) t.join();
  const proto::PartyId miner = static_cast<proto::PartyId>(k);

  // Hostile client 1: WRONG session secret — its envelopes fail the
  // integrity check at the miner. The daemon must reject per-message, not
  // die.
  {
    auto rogue = net::TcpTransport::connect(addr, seeds.session_secret ^ 0xBAD, test_tcp());
    const auto rogue_id = rogue->add_party();
    rogue->send(rogue_id, miner, proto::PayloadKind::kContribution,
                std::vector<double>{1.0, 2.0, 3.0});
    rogue->send_bye();
  }

  // Hostile client 2: correct secret, valid codec, but a nonce the miner
  // never negotiated — must get the NEGATIVE receipt (epoch 0)
  // immediately instead of silence.
  {
    auto rogue = net::TcpTransport::connect(addr, seeds.session_secret, test_tcp());
    const auto rogue_id = rogue->add_party();
    sap::rng::Engine eng(7);
    const sap::linalg::Matrix y =
        sap::linalg::Matrix::generate(setup.shards[0].dims(), 4, [&] { return eng.normal(); });
    const std::vector<int> labels{0, 1, 0, 1};
    rogue->send(rogue_id, miner, proto::PayloadKind::kContribution,
                proto::encode_contribution(0xDEADBEEF, y, labels));
    const auto ack = rogue->receive(rogue_id);
    EXPECT_EQ(ack.kind, proto::PayloadKind::kContributionAck);
    const auto receipt = proto::decode_receipt(ack.payload);
    EXPECT_EQ(receipt.pool_epoch, 0u);
    EXPECT_EQ(receipt.pool_records, 0u);
    rogue->send_bye();
  }

  // The daemon survived both: honest serving still works end to end.
  const auto receipt = parties[0]->contribute(setup.stream.slice(0, 8));
  EXPECT_EQ(receipt.pool_epoch, 2u);
  const auto response = parties[0]->mine_named("record-count");
  ASSERT_EQ(response.values.size(), 1u);
  EXPECT_EQ(response.values[0], static_cast<double>(receipt.pool_records));

  for (auto& p : parties) p->finish();
  const auto summary = daemon_future.get();
  EXPECT_EQ(summary.contributions, 1u);  // the hostile batches never landed
  EXPECT_EQ(summary.pool_epoch, 2u);
}

TEST(TcpDistributed, ConcurrentContributorsGrowThePoolConsistently) {
  const std::size_t k = 4;
  const std::uint64_t seed = 1717;
  auto setup = stream_setup(k, seed);

  // Every party contributes one batch concurrently: arrival order at the
  // miner is scheduling-dependent, so compare the pool as a record multiset
  // against a reference that appends the same per-party batches in a fixed
  // order.
  std::vector<Dataset> batches;
  for (std::size_t i = 0; i < k; ++i)
    batches.push_back(setup.stream.slice(i * 10, (i + 1) * 10));

  proto::SapSession reference(setup.shards, fast_opts(seed));
  reference.run_until(proto::SessionPhase::kMine);
  for (std::size_t i = 0; i < k; ++i) (void)reference.contribute(i, batches[i]);
  const auto ref_pool = *reference.engine().pool_view().data;

  net::MinerDaemonOptions daemon_opts;
  daemon_opts.listen = {"127.0.0.1", 0};
  daemon_opts.parties = k;
  daemon_opts.seed = seed;
  daemon_opts.tcp = test_tcp();
  net::MinerDaemon daemon(daemon_opts);
  const auto addr = daemon.local_addr();
  auto daemon_future = std::async(std::launch::async, [&] { return daemon.run(); });

  std::vector<std::thread> parties;
  for (std::size_t i = 0; i < k; ++i) {
    parties.emplace_back([&, i] {
      net::PartyClientOptions popts;
      popts.connect = addr;
      popts.index = i;
      popts.parties = k;
      popts.sap = fast_opts(seed);
      popts.tcp = test_tcp();
      net::PartyClient party(setup.shards[i], popts);
      (void)party.run_exchange();
      const auto receipt = party.contribute(batches[i]);
      EXPECT_GE(receipt.pool_records, 100u + batches[i].size());
      party.finish();
    });
  }
  for (auto& t : parties) t.join();
  const auto summary = daemon_future.get();

  EXPECT_EQ(summary.contributions, k);
  EXPECT_EQ(summary.pool_records, ref_pool.size());
  EXPECT_EQ(net::dataset_multiset_digest(*daemon.engine().pool_view().data),
            net::dataset_multiset_digest(ref_pool));
}

}  // namespace
