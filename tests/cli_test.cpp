// sap_cli process-level tests.
//
//   * `jobs --json` emits a machine-readable job/param schema — parsed here
//     with a real (small) JSON parser, not string matching;
//   * the cross-process topology: one `serve --listen` miner daemon process
//     and k `party --connect` processes over loopback TCP, all spawned as
//     genuine OS processes, with the daemon's pooled result asserted
//     bit-identical (digest + multiset digest) to the same logical session
//     run in-process through SapSession/kSimulated.
//
// SAP_CLI_PATH is injected by CMake as the built binary's absolute path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "data/normalize.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "net/remote.hpp"
#include "protocol/jobs.hpp"
#include "protocol/session.hpp"

namespace {

using sap::data::Dataset;

// ---- a minimal JSON parser (objects/arrays/strings/numbers/bools) --------

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<Json> items;
  std::map<std::string, Json> fields;

  [[nodiscard]] const Json& at(const std::string& key) const {
    const auto it = fields.find(key);
    if (it == fields.end()) throw std::runtime_error("missing key " + key);
    return it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Json parse() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing JSON garbage");
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                                   text_[pos_] == '\t' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end of JSON");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) throw std::runtime_error(std::string("expected '") + c + "'");
    ++pos_;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Json v;
        v.kind = Json::Kind::kString;
        v.text = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        Json v;
        v.kind = Json::Kind::kBool;
        v.boolean = peek() == 't';
        const std::string word = v.boolean ? "true" : "false";
        if (text_.compare(pos_, word.size(), word) != 0)
          throw std::runtime_error("bad literal");
        pos_ += word.size();
        return v;
      }
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (peek() != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        c = static_cast<char>(peek());
        ++pos_;
        if (c != '"' && c != '\\') throw std::runtime_error("unsupported escape");
      }
      out.push_back(c);
    }
    ++pos_;
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) throw std::runtime_error("bad JSON number");
    Json v;
    v.kind = Json::Kind::kNumber;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  Json parse_array() {
    expect('[');
    Json v;
    v.kind = Json::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }

  Json parse_object() {
    expect('{');
    Json v;
    v.kind = Json::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      v.fields[key] = parse_value();
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Run a command, capture all stdout/stderr, return the exit status.
int run_command(const std::string& command, std::string& output) {
  output.clear();
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (!pipe) return -1;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, pipe)) output += buf;
  const int status = pclose(pipe);
  return status;
}

// ---- jobs --json ---------------------------------------------------------

TEST(CliJobsJson, SchemaParsesAndCoversBuiltins) {
  const auto registry = sap::proto::JobRegistry::builtins();
  const Json root = JsonParser(sap::proto::schema_json(registry)).parse();
  const Json& jobs = root.at("jobs");
  ASSERT_EQ(jobs.kind, Json::Kind::kArray);
  ASSERT_EQ(jobs.items.size(), registry.names().size());

  std::map<std::string, const Json*> by_name;
  for (const Json& job : jobs.items) {
    EXPECT_EQ(job.kind, Json::Kind::kObject);
    const std::string kind = job.at("kind").text;
    EXPECT_TRUE(kind == "trainable" || kind == "structural") << kind;
    EXPECT_FALSE(job.at("summary").text.empty());
    for (const Json& param : job.at("params").items) {
      EXPECT_EQ(param.at("default").kind, Json::Kind::kNumber);
      EXPECT_LE(param.at("min").number, param.at("default").number);
      EXPECT_LE(param.at("default").number, param.at("max").number);
      EXPECT_EQ(param.at("serve_only").kind, Json::Kind::kBool);
    }
    by_name[job.at("name").text] = &job;
  }
  // Spot-check one trainable job against the registry's declared schema.
  ASSERT_TRUE(by_name.count("nb-train-accuracy"));
  const Json& nb = *by_name["nb-train-accuracy"];
  EXPECT_EQ(nb.at("kind").text, "trainable");
  ASSERT_EQ(nb.at("params").items.size(), 2u);
  EXPECT_EQ(nb.at("params").items[0].at("name").text, "var-smoothing");
  EXPECT_DOUBLE_EQ(nb.at("params").items[0].at("default").number, 1e-9);
  EXPECT_TRUE(nb.at("params").items[1].at("serve_only").boolean);
}

TEST(CliJobsJson, CliEmitsTheLibrarySchema) {
  std::string output;
  const int status = run_command(std::string(SAP_CLI_PATH) + " jobs --json", output);
  EXPECT_EQ(status, 0);
  EXPECT_EQ(output, sap::proto::schema_json(sap::proto::JobRegistry::builtins()));
  // And it parses standalone.
  EXPECT_NO_THROW((void)JsonParser(output).parse());
}

// ---- cross-process loopback topology ------------------------------------

TEST(CliCrossProcess, DaemonAndPartiesMatchInProcessSession) {
  constexpr std::uint64_t kSeed = 7;
  constexpr std::size_t kParties = 3;
  constexpr std::uint64_t kBatches = 2, kBatchRecords = 10;

  // Reference: the identical logical session in THIS process (kSimulated).
  // Data prep and session options come from the SAME library helpers
  // `sap_cli party`/`contribute` call — one copy, no drift.
  //
  // nb-train-accuracy report per pool epoch: a party's wire request races
  // with the other parties' contributions, so it may legitimately serve at
  // any epoch — AND an intermediate epoch's pool depends on which batch
  // arrived first (the final pool is canonical, the prefixes are not). So
  // the reference replays every contribution arrival order and a wire
  // (epoch, report) pair must match one of them.
  std::map<unsigned long long, std::set<std::string>> ref_job_at_epoch;
  unsigned long long ref_records = 0, ref_multiset = 0;
  std::vector<std::uint64_t> order(kBatches);
  for (std::uint64_t b = 0; b < kBatches; ++b) order[b] = b;
  do {
    auto workload =
        sap::data::make_stream_workload("Iris", kParties, kBatches, kBatchRecords, kSeed);
    const Dataset& stream = workload.stream;
    sap::proto::SapSession reference(std::move(workload.shards),
                                     sap::net::serving_session_options(0.1, kSeed));
    reference.run_until(sap::proto::SessionPhase::kMine);
    const auto note_epoch = [&] {
      const auto response = reference.engine().run({"nb-train-accuracy", {}});
      char text[64];
      std::snprintf(text, sizeof text, "%.6f", response.values[0]);
      ref_job_at_epoch[response.pool_epoch].insert(text);
    };
    note_epoch();
    for (const std::uint64_t b : order) {
      (void)reference.contribute(b % kParties,
                                 stream.slice(b * kBatchRecords, (b + 1) * kBatchRecords));
      note_epoch();
    }
    const auto ref_view = reference.engine().pool_view();
    ref_records = ref_view.data->size();
    ref_multiset = sap::net::dataset_multiset_digest(*ref_view.data);
  } while (std::next_permutation(order.begin(), order.end()));

  // Daemon process on an ephemeral port; parse the bound port from stdout.
  const std::string cli = SAP_CLI_PATH;
  FILE* daemon = popen((cli + " serve --listen 127.0.0.1:0 --parties 3 --seed 7"
                              " --deadline-ms 60000 2>&1")
                           .c_str(),
                       "r");
  ASSERT_NE(daemon, nullptr);
  std::string daemon_output;
  char line[4096];
  int port = 0;
  while (std::fgets(line, sizeof line, daemon)) {
    daemon_output += line;
    if (std::sscanf(line, "listening on 127.0.0.1:%d", &port) == 1) break;
  }
  ASSERT_GT(port, 0) << daemon_output;

  // k genuine party processes.
  std::vector<std::thread> threads;
  std::vector<std::string> party_output(kParties);
  std::vector<int> party_status(kParties, -1);
  for (std::size_t i = 0; i < kParties; ++i) {
    threads.emplace_back([&, i] {
      const std::string cmd = cli + " party Iris 3 0.1 7 --connect 127.0.0.1:" +
                              std::to_string(port) + " --index " + std::to_string(i) +
                              " --batches 2 --batch-records 10 --job nb-train-accuracy" +
                              " --deadline-ms 60000";
      party_status[i] = run_command(cmd, party_output[i]);
    });
  }
  for (auto& t : threads) t.join();

  // Drain the daemon to completion.
  while (std::fgets(line, sizeof line, daemon)) daemon_output += line;
  const int daemon_status = pclose(daemon);
  EXPECT_EQ(daemon_status, 0) << daemon_output;
  for (std::size_t i = 0; i < kParties; ++i) {
    EXPECT_EQ(party_status[i], 0) << "party " << i << ":\n" << party_output[i];
    EXPECT_NE(party_output[i].find("done"), std::string::npos) << party_output[i];
  }

  // The daemon's final pool equals the in-process reference: same record
  // count, same records (multiset digest — concurrent contributors make the
  // append order scheduling-dependent).
  unsigned long long records = 0, epoch = 0, digest = 0, multiset = 0;
  const auto served_at = daemon_output.find("served: ");
  ASSERT_NE(served_at, std::string::npos) << daemon_output;
  ASSERT_EQ(std::sscanf(daemon_output.c_str() + served_at,
                        "served: %llu records at epoch %llu, digest %llu, multiset %llu",
                        &records, &epoch, &digest, &multiset),
            4)
      << daemon_output;
  EXPECT_EQ(records, ref_records);
  EXPECT_EQ(epoch, 1 + kBatches);
  EXPECT_EQ(multiset, ref_multiset);

  // Wire-served job reports match in-process serving at whatever epoch the
  // request landed on.
  for (std::size_t i = 0; i < kParties; ++i) {
    const auto at = party_output[i].find("job nb-train-accuracy -> [");
    ASSERT_NE(at, std::string::npos) << party_output[i];
    char value[64] = {};
    unsigned long long job_epoch = 0;
    ASSERT_EQ(std::sscanf(party_output[i].c_str() + at,
                          "job nb-train-accuracy -> [%63[^]]] (epoch %llu)", value,
                          &job_epoch),
              2)
        << party_output[i];
    ASSERT_TRUE(ref_job_at_epoch.count(job_epoch))
        << "party " << i << " served at unknown epoch " << job_epoch;
    EXPECT_TRUE(ref_job_at_epoch[job_epoch].count(value))
        << "party " << i << " at epoch " << job_epoch << " served " << value
        << ", not an in-process report at that epoch";
  }
}

}  // namespace
