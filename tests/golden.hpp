// Pinned golden values for the deterministic optimizer baseline.
//
// The per-candidate seed-derivation scheme (optimizer.hpp, DESIGN.md §8) is
// THE baseline every deployment must reproduce bit-for-bit: the same seed
// must give the same perturbations whether candidates are scored on 0, 2 or
// 8 threads, in one process or across a TCP daemon. These constants freeze
// that baseline so an accidental re-ordering of RNG draws (a new draw in
// the candidate loop, a reordered spawn) fails loudly instead of silently
// re-keying every deployment.
//
// This header is the ONE place goldens live; re-pin here (and say so in the
// PR) whenever the derivation scheme deliberately changes.
//
// Within one binary the suite asserts exact equality (thread-count and
// transport invariance). Across compilers the low bits can legitimately
// differ (FMA contraction, vectorizer choices), so the pins use
// kGoldenTolerance instead of exact comparison.
#pragma once

namespace sap::testing {

/// |measured - pinned| tolerance for cross-compiler golden checks.
inline constexpr double kGoldenTolerance = 1e-7;

/// optimize_perturbation on normalized Wine (data seed 5), Engine(99),
/// candidates=6, refine_steps=3, max_eval_records=100, naive+known(4).
inline constexpr double kGoldenWineBestRho = 0.79431834031577186;

/// Same options on normalized Iris (data seed 7), Engine(17).
inline constexpr double kGoldenIrisBestRho = 0.63135623673444197;

/// SapSession over provider_split("Iris", 3, 4242) shards with
/// SapOptions::fast() + seed 4242: party 0's locally optimized rho_i.
inline constexpr double kGoldenSessionParty0Rho = 0.54116241632763151;

}  // namespace sap::testing
