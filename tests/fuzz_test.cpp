// Robustness / fuzz tests: wire payloads are adversarial input. Every
// decoder must either round-trip faithfully or throw sap::Error — never
// crash, hang, or silently accept garbage that violates its invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "net/frame.hpp"
#include "perturb/geometric.hpp"
#include "perturb/space_adaptor.hpp"
#include "protocol/message.hpp"
#include "rng/rng.hpp"

namespace {

using sap::linalg::Matrix;
using sap::rng::Engine;
namespace proto = sap::proto;

/// Apply one random mutation to a wire payload: truncate, extend, or
/// overwrite an element with a hostile value (NaN, inf, huge, negative...).
std::vector<double> mutate(std::vector<double> wire, Engine& eng) {
  const auto action = eng.uniform_index(4);
  switch (action) {
    case 0:  // truncate
      if (!wire.empty()) wire.resize(eng.uniform_index(wire.size()));
      break;
    case 1:  // extend with junk
      wire.push_back(eng.normal(0.0, 1e6));
      break;
    case 2: {  // hostile overwrite
      if (wire.empty()) break;
      static const double hostile[] = {std::nan(""),
                                       std::numeric_limits<double>::infinity(),
                                       -std::numeric_limits<double>::infinity(),
                                       -1.0,
                                       1e300,
                                       0.5,
                                       -123456789.0};
      wire[eng.uniform_index(wire.size())] = hostile[eng.uniform_index(std::size(hostile))];
      break;
    }
    default:  // swap two elements
      if (wire.size() >= 2) {
        const auto i = eng.uniform_index(wire.size());
        const auto j = eng.uniform_index(wire.size());
        std::swap(wire[i], wire[j]);
      }
  }
  return wire;
}

template <typename DecodeFn>
void fuzz_decoder(const std::vector<double>& valid_wire, DecodeFn decode, int rounds,
                  std::uint64_t seed) {
  Engine eng(seed);
  for (int round = 0; round < rounds; ++round) {
    auto wire = valid_wire;
    const auto mutations = 1 + eng.uniform_index(3);
    for (std::size_t m = 0; m < mutations; ++m) wire = mutate(std::move(wire), eng);
    try {
      decode(wire);  // accepting a benign mutation is fine
    } catch (const sap::Error&) {
      // rejecting is fine — anything but a crash/UB
    }
  }
}

TEST(Fuzz, DatasetCodecNeverCrashes) {
  Engine eng(1);
  Matrix f = Matrix::generate(4, 9, [&] { return eng.normal(); });
  const std::vector<int> labels{0, 1, 2, 0, 1, 2, 0, 1, 2};
  const auto wire = proto::encode_dataset(f, labels);
  fuzz_decoder(wire, [](const std::vector<double>& w) { (void)proto::decode_dataset(w); },
               400, 11);
}

TEST(Fuzz, TargetSpaceCodecNeverCrashes) {
  Engine eng(2);
  const Matrix r = Matrix::identity(5);
  const sap::linalg::Vector t(5, 0.25);
  const auto wire = proto::encode_target_space(r, t);
  fuzz_decoder(wire,
               [](const std::vector<double>& w) { (void)proto::decode_target_space(w); },
               400, 13);
}

TEST(Fuzz, RoutingCodecNeverCrashes) {
  const auto wire = proto::encode_routing(3, 1);
  fuzz_decoder(wire, [](const std::vector<double>& w) { (void)proto::decode_routing(w); },
               200, 17);
}

TEST(Fuzz, ContributionCodecNeverCrashes) {
  Engine eng(9);
  Matrix f = Matrix::generate(4, 6, [&] { return eng.normal(); });
  const std::vector<int> labels{0, 1, 2, 0, 1, 2};
  const auto wire = proto::encode_contribution(0xABCDu, f, labels);
  fuzz_decoder(wire,
               [](const std::vector<double>& w) { (void)proto::decode_contribution(w); },
               400, 29);
}

TEST(Fuzz, ContributionCodecRoundTrips) {
  Engine eng(10);
  Matrix f = Matrix::generate(3, 5, [&] { return eng.normal(); });
  const std::vector<int> labels{1, 0, 1, 0, 1};
  const auto back = proto::decode_contribution(proto::encode_contribution(77, f, labels));
  EXPECT_EQ(back.nonce, 77u);
  EXPECT_TRUE(back.data.features.approx_equal(f, 0.0));
  EXPECT_EQ(back.data.labels, labels);
  // Malformed nonces (negative, fractional, non-finite) are rejected.
  EXPECT_THROW((void)proto::decode_contribution(std::vector<double>{-1.0, 1.0, 1.0, 0.5, 0.0}),
               sap::Error);
  EXPECT_THROW((void)proto::decode_contribution(std::vector<double>{0.5, 1.0, 1.0, 0.5, 0.0}),
               sap::Error);
  EXPECT_THROW((void)proto::decode_contribution(std::vector<double>{}), sap::Error);
}

TEST(Fuzz, SpaceAdaptorCodecNeverCrashes) {
  Engine eng(3);
  const auto g_i = sap::perturb::GeometricPerturbation::random(4, 0.1, eng);
  const auto g_t = sap::perturb::GeometricPerturbation::random(4, 0.0, eng);
  const auto wire = sap::perturb::SpaceAdaptor::between(g_i, g_t).serialize();
  fuzz_decoder(wire,
               [](const std::vector<double>& w) {
                 (void)sap::perturb::SpaceAdaptor::deserialize(w);
               },
               400, 19);
}

TEST(Fuzz, PerturbationCodecNeverCrashes) {
  Engine eng(4);
  const auto g = sap::perturb::GeometricPerturbation::random(6, 0.2, eng);
  const auto wire = g.serialize();
  fuzz_decoder(wire,
               [](const std::vector<double>& w) {
                 (void)sap::perturb::GeometricPerturbation::deserialize(w);
               },
               400, 23);
}

TEST(Fuzz, SpaceAdaptorSerializationRoundTrips) {
  // The adaptor codec is protocol wire format (kSpaceAdaptor /
  // kAdaptorSequence payloads): a faithful round-trip is a correctness
  // requirement of the Transport seam, not just a convenience.
  Engine eng(31);
  const auto g_i = sap::perturb::GeometricPerturbation::random(5, 0.2, eng);
  const auto g_t = sap::perturb::GeometricPerturbation::random(5, 0.0, eng);
  const auto adaptor = sap::perturb::SpaceAdaptor::between(g_i, g_t);
  const auto back = sap::perturb::SpaceAdaptor::deserialize(adaptor.serialize());
  EXPECT_TRUE(back.rotation().approx_equal(adaptor.rotation(), 0.0));
  EXPECT_EQ(back.translation(), adaptor.translation());
  EXPECT_EQ(back.dims(), adaptor.dims());
}

TEST(Fuzz, TruncatedAdaptorWireRejected) {
  // Every strict prefix (and short extension) of a valid adaptor payload
  // must be rejected — a half-delivered adaptor must never unify data.
  Engine eng(32);
  const auto g_i = sap::perturb::GeometricPerturbation::random(4, 0.1, eng);
  const auto g_t = sap::perturb::GeometricPerturbation::random(4, 0.0, eng);
  const auto wire = sap::perturb::SpaceAdaptor::between(g_i, g_t).serialize();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const std::vector<double> truncated(wire.begin(),
                                        wire.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)sap::perturb::SpaceAdaptor::deserialize(truncated), sap::Error)
        << "len=" << len;
  }
  for (std::size_t extra = 1; extra <= 3; ++extra) {
    auto extended = wire;
    extended.insert(extended.end(), extra, 0.0);
    EXPECT_THROW((void)sap::perturb::SpaceAdaptor::deserialize(extended), sap::Error)
        << "extra=" << extra;
  }
}

TEST(Fuzz, PerturbationSerializationRoundTrips) {
  Engine eng(5);
  const auto g = sap::perturb::GeometricPerturbation::random(7, 0.35, eng);
  const auto back = sap::perturb::GeometricPerturbation::deserialize(g.serialize());
  EXPECT_TRUE(back.rotation().approx_equal(g.rotation(), 0.0));
  EXPECT_EQ(back.translation(), g.translation());
  EXPECT_DOUBLE_EQ(back.noise_sigma(), g.noise_sigma());
}

TEST(Fuzz, CorruptedAdaptorRotationRejected) {
  // Payload with the right shape but a non-orthogonal rotation block must be
  // rejected by the SpaceAdaptor constructor's orthogonality contract.
  Engine eng(6);
  const auto g_i = sap::perturb::GeometricPerturbation::random(3, 0.1, eng);
  const auto g_t = sap::perturb::GeometricPerturbation::random(3, 0.0, eng);
  auto wire = sap::perturb::SpaceAdaptor::between(g_i, g_t).serialize();
  wire[1] += 0.5;  // break orthogonality of R_it
  EXPECT_THROW(sap::perturb::SpaceAdaptor::deserialize(wire), sap::Error);
}

TEST(Fuzz, EnvelopeTamperDetected) {
  // Flipping any ciphertext bit must be caught by the checksum.
  const std::vector<double> plain{3.14, 2.71, 1.41, 0.57};
  proto::EncryptedEnvelope env(plain, 0xFEED);
  // Round-trip sanity first.
  EXPECT_EQ(env.open(0xFEED), plain);

  Engine eng(7);
  for (int trial = 0; trial < 64; ++trial) {
    proto::EncryptedEnvelope copy = env;
    auto cipher = copy.ciphertext();
    // const view — tamper through a rebuilt envelope instead: flip a bit in
    // a reconstructed ciphertext by re-encrypting modified plaintext under a
    // wrong key and checking cross-open fails.
    const std::uint64_t wrong_key = 0xFEED ^ (1ULL << eng.uniform_index(64));
    EXPECT_THROW((void)env.open(wrong_key), sap::Error);
    (void)cipher;
  }
}

TEST(Fuzz, MiningRequestCodecNeverCrashes) {
  const auto wire = proto::encode_mining_request(
      "nb-train-accuracy", {{"var-smoothing", 1e-9}, {"eval-records", 64.0}});
  fuzz_decoder(wire,
               [](const std::vector<double>& w) { (void)proto::decode_mining_request(w); },
               600, 37);
  // Round trip.
  const auto back = proto::decode_mining_request(wire);
  EXPECT_EQ(back.job, "nb-train-accuracy");
  EXPECT_EQ(back.params.size(), 2u);
  EXPECT_DOUBLE_EQ(back.params.at("eval-records"), 64.0);
  // Hostile strings: non-printable code points and absurd lengths.
  EXPECT_THROW((void)proto::decode_mining_request(std::vector<double>{2.0, 7.0, 7.0, 0.0}),
               sap::Error);
  EXPECT_THROW((void)proto::decode_mining_request(std::vector<double>{1e9, 65.0, 0.0}),
               sap::Error);
  EXPECT_THROW((void)proto::decode_mining_request(std::vector<double>{}), sap::Error);
}

TEST(Fuzz, MiningResponseCodecNeverCrashes) {
  proto::WireMiningResponse resp;
  resp.pool_epoch = 3;
  resp.model_cached = true;
  resp.values = {0.25, 0.75, -1.0};
  const auto wire = proto::encode_mining_response(resp);
  fuzz_decoder(wire,
               [](const std::vector<double>& w) { (void)proto::decode_mining_response(w); },
               400, 41);
  const auto back = proto::decode_mining_response(wire);
  EXPECT_EQ(back.pool_epoch, 3u);
  EXPECT_TRUE(back.model_cached);
  EXPECT_FALSE(back.model_incremental);
  EXPECT_EQ(back.values, resp.values);
  // A flag that is not exactly 0/1 is hostile.
  EXPECT_THROW((void)proto::decode_mining_response(std::vector<double>{1.0, 0.5, 0.0, 0.0}),
               sap::Error);
}

TEST(Fuzz, ReceiptCodecNeverCrashes) {
  const auto wire = proto::encode_receipt(5, 1234);
  fuzz_decoder(wire, [](const std::vector<double>& w) { (void)proto::decode_receipt(w); },
               200, 43);
  const auto back = proto::decode_receipt(wire);
  EXPECT_EQ(back.pool_epoch, 5u);
  EXPECT_EQ(back.pool_records, 1234u);
}

// ---- byte-level wire frames (net/frame.hpp) ------------------------------

/// One random byte-level mutation: truncate, extend, or corrupt a byte.
std::vector<std::uint8_t> mutate_bytes(std::vector<std::uint8_t> bytes, Engine& eng) {
  switch (eng.uniform_index(3)) {
    case 0:  // truncate
      if (!bytes.empty()) bytes.resize(eng.uniform_index(bytes.size()));
      break;
    case 1:  // extend with junk
      for (std::size_t i = 0, n = 1 + eng.uniform_index(16); i < n; ++i)
        bytes.push_back(static_cast<std::uint8_t>(eng.uniform_index(256)));
      break;
    default:  // corrupt one byte (hits magic/version/type/length/crc/body)
      if (!bytes.empty())
        bytes[eng.uniform_index(bytes.size())] ^=
            static_cast<std::uint8_t>(1 + eng.uniform_index(255));
  }
  return bytes;
}

TEST(Fuzz, FrameReaderNeverCrashes) {
  // Valid two-frame stream as the seed input.
  Engine eng(47);
  sap::net::Frame data;
  data.type = sap::net::FrameType::kData;
  data.payload_kind = static_cast<std::uint8_t>(proto::PayloadKind::kContribution);
  data.from = 1;
  data.to = 4;
  const std::vector<double> payload{1.0, 2.5, -3.75};
  data.body = sap::net::envelope_body(proto::EncryptedEnvelope(payload, 0x5EED));
  sap::net::Frame hello;
  hello.type = sap::net::FrameType::kHello;
  hello.body = sap::net::u32_body(2);
  std::vector<std::uint8_t> valid;
  sap::net::encode_frame(data, valid);
  sap::net::encode_frame(hello, valid);

  for (int round = 0; round < 1000; ++round) {
    auto bytes = valid;
    const auto mutations = 1 + eng.uniform_index(4);
    for (std::size_t m = 0; m < mutations; ++m) bytes = mutate_bytes(std::move(bytes), eng);
    // Feed in random chunk sizes: decoding must be identical to one-shot.
    sap::net::FrameReader reader;
    sap::net::Frame out;
    std::size_t pos = 0;
    try {
      while (pos < bytes.size()) {
        const auto chunk = std::min<std::size_t>(1 + eng.uniform_index(64),
                                                 bytes.size() - pos);
        reader.feed(bytes.data() + pos, chunk);
        pos += chunk;
        while (reader.next(out)) {
          // A surviving kData frame must still carry a well-formed envelope
          // OR be rejected — never crash.
          if (out.type == sap::net::FrameType::kData) {
            try {
              (void)sap::net::body_envelope(out.body).open(0x5EED);
            } catch (const sap::Error&) {
            }
          }
        }
      }
    } catch (const sap::Error&) {
      // Rejecting the stream is fine — anything but a crash/UB.
    }
  }
}

TEST(Fuzz, FrameRejectsWrongVersionAndOversizedLength) {
  sap::net::Frame frame;
  frame.type = sap::net::FrameType::kBye;
  std::vector<std::uint8_t> bytes;
  sap::net::encode_frame(frame, bytes);

  // Every version except the current one is rejected.
  for (int v = 0; v < 256; ++v) {
    if (v == sap::net::kFrameVersion) continue;
    auto mutated = bytes;
    mutated[4] = static_cast<std::uint8_t>(v);
    sap::net::FrameReader reader;
    reader.feed(mutated.data(), mutated.size());
    sap::net::Frame out;
    EXPECT_THROW((void)reader.next(out), sap::Error) << "version " << v;
  }

  // A length prefix beyond the cap is rejected BEFORE the body arrives —
  // a hostile peer cannot make the reader allocate unbounded memory.
  auto oversized = bytes;
  oversized[24] = 0xFF;
  oversized[25] = 0xFF;
  oversized[26] = 0xFF;
  oversized[27] = 0xFF;
  sap::net::FrameReader small_cap(/*max_body=*/1024);
  small_cap.feed(oversized.data(), sap::net::kFrameHeaderBytes);
  sap::net::Frame out;
  EXPECT_THROW((void)small_cap.next(out), sap::Error);
}

TEST(Fuzz, DecoderAcceptsOnlyExactSizes) {
  // Systematic size sweep: every prefix/extension of a valid payload except
  // the exact size must throw.
  Engine eng(8);
  Matrix f = Matrix::generate(3, 4, [&] { return eng.normal(); });
  const std::vector<int> labels{0, 1, 0, 1};
  const auto wire = proto::encode_dataset(f, labels);
  for (std::size_t len = 0; len <= wire.size() + 3; ++len) {
    if (len == wire.size()) continue;
    std::vector<double> w(len);
    for (std::size_t i = 0; i < len; ++i) w[i] = (i < wire.size()) ? wire[i] : 0.0;
    EXPECT_THROW((void)proto::decode_dataset(w), sap::Error) << "len=" << len;
  }
}

}  // namespace
